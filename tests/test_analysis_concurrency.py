"""Per-rule fixtures for the concurrency-safety rules RA201–RA206, the
guarded-by annotation parser, and the repo self-check asserting the tree
carries zero unannotated violations.  Mirrors the harness in
``test_analysis_rules.py``: every rule fires on a seeded true positive,
stays quiet on the idiomatic counterpart, suppresses with noqa, and rides
the baseline ratchet."""

from pathlib import Path

import pytest

from repro.analysis import Baseline, all_rules, lint_paths, lint_source
from repro.analysis.concurrency import (
    CONCURRENCY_RULE_CODES,
    GuardSpec,
    guarded_specs_from_source,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

RUNTIME = "src/repro/runtime/fake_worker.py"
OBS = "src/repro/obs/fake_sink.py"
DURABILITY = "src/repro/durability/fake_log.py"
ELSEWHERE = "src/repro/workload/fake_gen.py"


def run(code, path, src):
    return lint_source(src, path, all_rules([code]))


RA201_BAD = """\
import threading

class Buf:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # guarded-by: _lock

    def add(self, x):
        with self._lock:
            self._items.append(x)

    def size(self):
        return len(self._items)
"""

RA201_GOOD = RA201_BAD.replace(
    "    def size(self):\n        return len(self._items)\n",
    "    def size(self):\n"
    "        with self._lock:\n"
    "            return len(self._items)\n",
)

RA201_SPSC_BAD = """\
class Ring:
    def __init__(self):
        self._tail = 0  # guarded-by: spsc:send

    def send(self):
        self._tail += 1

    def reset(self):
        self._tail = 0
"""

RA201_SPSC_GOOD = """\
class Ring:
    def __init__(self):
        self._tail = 0  # guarded-by: spsc:send

    def send(self):
        self._tail += 1

    def occupancy(self):
        return self._tail
"""

RA202_BAD = """\
import threading

class Server:
    def __init__(self):
        self.count = 0
        self.thread = threading.Thread(target=self.run)

    def run(self):
        while self.count < 10:
            self.count += 1
"""

RA202_GOOD = """\
import threading

class Server:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        self.thread = threading.Thread(target=self.run)

    def run(self):
        with self._lock:
            self.count += 1
"""

RA203_BAD = """\
import threading

class Queue:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # guarded-by: _lock

    def move(self):
        with self._lock:
            n = len(self._items)
        with self._lock:
            if n:
                self._items.pop()
"""

RA203_GOOD = """\
import threading

class Queue:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # guarded-by: _lock

    def move(self):
        with self._lock:
            n = len(self._items)
            if n:
                self._items.pop()
"""

RA204_BAD = """\
import threading

class Notifier:
    def __init__(self):
        self._lock = threading.Lock()
        self._callbacks = []  # guarded-by: _lock

    def fire(self):
        with self._lock:
            for cb in self._callbacks:
                cb()
"""

RA204_GOOD = """\
import threading

class Notifier:
    def __init__(self):
        self._lock = threading.Lock()
        self._callbacks = []  # guarded-by: _lock

    def fire(self):
        with self._lock:
            callbacks = list(self._callbacks)
        for cb in callbacks:
            cb()
"""

RA205_BAD = """\
import threading

class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self):
        with self._lock:
            self._value += 1
"""

RA205_GOOD = RA205_BAD.replace(
    "        self._value = 0\n",
    "        self._value = 0  # guarded-by: _lock\n",
)

RA205_HYGIENE_BAD = """\
class Tally:
    def __init__(self):
        self._value = 0  # guarded-by: _mutex
"""

RA205_HYGIENE_GOOD = """\
import threading

class Tally:
    def __init__(self):
        self._mutex = threading.Lock()
        self._value = 0  # guarded-by: _mutex
"""

RA206_BAD = """\
import threading

class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def one(self):
        with self._a:
            with self._b:
                pass

    def two(self):
        with self._b:
            with self._a:
                pass
"""

RA206_GOOD = RA206_BAD.replace(
    "    def two(self):\n"
    "        with self._b:\n"
    "            with self._a:\n"
    "                pass\n",
    "    def two(self):\n"
    "        with self._a:\n"
    "            with self._b:\n"
    "                pass\n",
)

# (code, path, firing source, quiet source, substring expected in message)
CASES = [
    pytest.param(
        "RA201", RUNTIME, RA201_BAD, RA201_GOOD,
        "without holding self._lock",
        id="RA201-unguarded-access",
    ),
    pytest.param(
        "RA201", RUNTIME, RA201_SPSC_BAD, RA201_SPSC_GOOD,
        "single writer",
        id="RA201-spsc-foreign-writer",
    ),
    pytest.param(
        "RA202", RUNTIME, RA202_BAD, RA202_GOOD,
        "escapes to another thread",
        id="RA202-escape",
    ),
    pytest.param(
        "RA203", OBS, RA203_BAD, RA203_GOOD,
        "re-acquired self._lock",
        id="RA203-lock-reentry",
    ),
    pytest.param(
        "RA204", RUNTIME, RA204_BAD, RA204_GOOD,
        "invoked while holding self._lock",
        id="RA204-callback-under-lock",
    ),
    pytest.param(
        "RA205", DURABILITY, RA205_BAD, RA205_GOOD,
        "carries no declaration",
        id="RA205-missing-annotation",
    ),
    pytest.param(
        "RA205", RUNTIME, RA205_HYGIENE_BAD, RA205_HYGIENE_GOOD,
        "no lock attribute",
        id="RA205-unknown-lock",
    ),
    pytest.param(
        "RA206", RUNTIME, RA206_BAD, RA206_GOOD,
        "inconsistent lock order",
        id="RA206-lock-order",
    ),
]


@pytest.mark.parametrize("code,path,bad,good,fragment", CASES)
class TestEveryConcurrencyRule:
    def test_fires_on_violation(self, code, path, bad, good, fragment):
        findings = run(code, path, bad)
        assert findings, f"{code} did not fire on its fixture"
        assert all(f.rule == code for f in findings)
        assert fragment in findings[0].message

    def test_quiet_on_idiomatic_code(self, code, path, bad, good, fragment):
        assert run(code, path, good) == []

    def test_noqa_suppresses(self, code, path, bad, good, fragment):
        findings = run(code, path, bad)
        lines = bad.splitlines()
        for f in findings:
            lines[f.line - 1] += f"  # repro: noqa[{code}]"
        assert run(code, path, "\n".join(lines) + "\n") == []

    def test_baseline_ratchet_round_trip(self, code, path, bad, good, fragment):
        findings = run(code, path, bad)
        baseline = Baseline().ratchet(findings)
        assert baseline.check(findings).ok
        clean = baseline.check(run(code, path, good))
        assert clean.ok and clean.stale
        assert not baseline.check(findings + findings).ok


class TestScoping:
    def test_rules_only_fire_in_concurrency_scope(self):
        for code, bad in (
            ("RA201", RA201_BAD),
            ("RA202", RA202_BAD),
            ("RA203", RA203_BAD),
            ("RA204", RA204_BAD),
            ("RA205", RA205_BAD),
            ("RA206", RA206_BAD),
        ):
            assert run(code, RUNTIME, bad), code
            assert run(code, ELSEWHERE, bad) == [], code

    def test_scope_covers_all_concurrent_packages(self):
        for path in (RUNTIME, OBS, DURABILITY,
                     "src/repro/runtime/transport/fake_ring.py"):
            assert run("RA201", path, RA201_BAD), path

    def test_init_writes_are_exempt(self):
        src = (
            "import threading\n"
            "class Boot:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._state = {}  # guarded-by: _lock\n"
            "        self._state['k'] = 1\n"
        )
        assert run("RA201", RUNTIME, src) == []

    def test_ra201_both_reads_and_writes_fire(self):
        write_only = RA201_BAD.replace(
            "    def size(self):\n        return len(self._items)\n",
            "    def clear(self):\n        self._items = []\n",
        )
        findings = run("RA201", RUNTIME, write_only)
        assert findings and "written" in findings[0].message

    def test_ra202_init_only_attributes_are_exempt(self):
        src = (
            "import threading\n"
            "class Srv:\n"
            "    def __init__(self):\n"
            "        self.httpd = object()\n"
            "        self.thread = threading.Thread(target=self.httpd.serve)\n"
            "    def url(self):\n"
            "        return self.httpd\n"
        )
        assert run("RA202", RUNTIME, src) == []

    def test_ra202_executor_submit_escapes(self):
        src = (
            "class Pool:\n"
            "    def __init__(self, ex):\n"
            "        self.n = 0\n"
            "        ex.submit(self.work)\n"
            "    def work(self):\n"
            "        self.n += 1\n"
        )
        findings = run("RA202", RUNTIME, src)
        assert findings and "submit" in findings[0].message

    def test_ra205_unknown_spsc_writer_flagged(self):
        src = (
            "class Ring:\n"
            "    def __init__(self):\n"
            "        self._tail = 0  # guarded-by: spsc:send\n"
        )
        findings = run("RA205", RUNTIME, src)
        assert findings and "no method send()" in findings[0].message


class TestGuardSpecParsing:
    def test_lock_and_spsc_forms(self):
        assert GuardSpec.parse("_lock") == GuardSpec(raw="_lock", lock="_lock")
        assert GuardSpec.parse("spsc:send") == GuardSpec(
            raw="spsc:send", writer="send"
        )

    def test_specs_from_source_finds_the_class(self):
        specs = guarded_specs_from_source(RA201_BAD, "Buf")
        assert specs == {"_items": GuardSpec(raw="_lock", lock="_lock")}
        assert guarded_specs_from_source(RA201_BAD, "Missing") == {}

    def test_docstring_mention_is_not_an_annotation(self):
        src = (
            "class C:\n"
            '    """Uses the  # guarded-by: _lock  convention."""\n'
            "    def __init__(self):\n"
            "        self.x = 0\n"
        )
        assert guarded_specs_from_source(src, "C") == {}


class TestRepoSelfCheck:
    def test_tree_has_zero_unannotated_violations(self):
        """`repro lint --concurrency` on the shipped tree must be clean:
        every shared attribute is annotated and disciplined."""
        rules = all_rules(list(CONCURRENCY_RULE_CODES))
        findings = lint_paths([SRC], REPO_ROOT, rules)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_catalog_contains_the_concurrency_rules(self):
        codes = {type(r).code for r in all_rules()}
        assert set(CONCURRENCY_RULE_CODES) <= codes
