"""Tests for the adaptive processor's choose() decision surface."""

import random

from repro.core.intervals import Interval
from repro.engine.queries import SelectJoinQuery
from repro.engine.table import TableR, TableS
from repro.operators.adaptive import AdaptiveSelectJoinProcessor


def build(seed=1, group_cost=1.0):
    rng = random.Random(seed)
    table_s = TableS(order=4)
    table_r = TableR(order=4)
    for __ in range(200):
        table_s.add(float(rng.randrange(10)), rng.uniform(0, 100))
    processor = AdaptiveSelectJoinProcessor(
        table_s, table_r, ssi_group_cost=group_cost, histogram_buckets=32
    )
    return rng, table_r, processor


def test_choose_prefers_select_first_in_dead_zones():
    rng, table_r, processor = build()
    # All rangeA interest sits around 10; rangeC clusters at one anchor.
    for __ in range(300):
        a_lo = rng.normalvariate(10.0, 1.0)
        processor.add_query(
            SelectJoinQuery(
                Interval(a_lo, a_lo + 2.0), Interval(50.0 - rng.random(), 50.0 + rng.random())
            )
        )
    dead = table_r.new_row(80.0, 3.0)
    hot = table_r.new_row(10.0, 3.0)
    assert processor.choose(dead) == "SJ-S"
    assert processor.choose(hot) == "SJ-SSI"


def test_group_cost_scales_the_threshold():
    # A very large group cost makes SJ-S the universal choice.
    rng, table_r, processor = build(seed=2, group_cost=1e9)
    for __ in range(200):
        a_lo = rng.normalvariate(10.0, 1.0)
        processor.add_query(
            SelectJoinQuery(Interval(a_lo, a_lo + 2.0), Interval(49.0, 51.0))
        )
    assert processor.choose(table_r.new_row(10.0, 3.0)) == "SJ-S"


def test_chosen_counters_accumulate():
    rng, table_r, processor = build(seed=3)
    for __ in range(200):
        a_lo = rng.normalvariate(10.0, 1.0)
        processor.add_query(
            SelectJoinQuery(Interval(a_lo, a_lo + 2.0), Interval(49.0, 51.0))
        )
    for __ in range(4):
        processor.process_r(table_r.new_row(10.0, 3.0))
        processor.process_r(table_r.new_row(80.0, 3.0))
    assert processor.chosen["SJ-SSI"] == 4
    assert processor.chosen["SJ-S"] == 4
