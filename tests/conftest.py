"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.core.intervals import Interval


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def interval_strategy(
    lo: float = -100.0, hi: float = 100.0, max_length: float = 50.0
) -> st.SearchStrategy[Interval]:
    """Closed intervals with finite float endpoints inside [lo, hi]."""

    def build(start: float, length: float) -> Interval:
        return Interval(start, min(start + length, hi))

    return st.builds(
        build,
        st.floats(min_value=lo, max_value=hi, allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.0, max_value=max_length, allow_nan=False, allow_infinity=False),
    )


def int_interval_strategy(lo: int = -50, hi: int = 50) -> st.SearchStrategy[Interval]:
    """Integer-endpoint intervals: small discrete space, high collision rate
    --- good at shaking out tie-handling bugs."""

    def build(start: int, length: int) -> Interval:
        return Interval(float(start), float(min(start + length, hi)))

    return st.builds(
        build,
        st.integers(min_value=lo, max_value=hi),
        st.integers(min_value=0, max_value=20),
    )


def interval_lists(min_size: int = 1, max_size: int = 60) -> st.SearchStrategy[list]:
    return st.lists(int_interval_strategy(), min_size=min_size, max_size=max_size)


# ``st.from_type(Interval)`` (and inference inside st.builds) resolves to the
# discrete high-collision strategy everywhere in the suite.
st.register_type_strategy(Interval, int_interval_strategy())

EPSILON_CHOICES = st.sampled_from([0.25, 0.5, 1.0, 2.0])
ALPHA_CHOICES = st.sampled_from([0.1, 0.2, 0.25, 0.5])


def fresh_intervals(intervals: list[Interval]) -> list[Interval]:
    """Copy intervals into distinct objects (the dynamic partitions key items
    by identity, so shared objects would alias)."""
    return [Interval(interval.lo, interval.hi) for interval in intervals]
