"""Tests for band joins with local selections (Section 6 extension)."""

import random

import pytest

from repro.core.intervals import Interval
from repro.engine.table import TableR, TableS
from repro.operators.band_select_join import (
    BandSelectJoinQuery,
    BSJPerQuery,
    BSJSSI,
    brute_force_band_select_join,
)


def norm(results):
    return {q.qid: sorted(s.sid for s in rows) for q, rows in results.items()}


def make_workload(seed, n_s=200, n_q=80):
    rng = random.Random(seed)
    table_s = TableS(order=4)
    table_r = TableR(order=4)
    for __ in range(n_s):
        table_s.add(rng.uniform(0, 100), rng.uniform(0, 50))
    queries = []
    for __ in range(n_q):
        band_lo = rng.uniform(-10, 10)
        a_lo = rng.uniform(0, 40)
        c_lo = rng.uniform(0, 40)
        queries.append(
            BandSelectJoinQuery(
                band=Interval(band_lo, band_lo + rng.uniform(0, 4)),
                range_a=Interval(a_lo, a_lo + rng.uniform(0, 15)),
                range_c=Interval(c_lo, c_lo + rng.uniform(0, 15)),
            )
        )
    return rng, table_s, table_r, queries


class TestQueryModel:
    def test_matches_requires_all_three_conditions(self):
        query = BandSelectJoinQuery(
            band=Interval(-1, 1), range_a=Interval(0, 10), range_c=Interval(0, 10)
        )
        table = TableS()
        r_ok = TableR().new_row(a=5.0, b=50.0)
        s_ok = table.new_row(b=50.5, c=5.0)
        assert query.matches(r_ok, s_ok)
        assert not query.matches(TableR().new_row(a=50.0, b=50.0), s_ok)  # A fails
        assert not query.matches(r_ok, table.new_row(b=50.5, c=50.0))     # C fails
        assert not query.matches(r_ok, table.new_row(b=60.0, c=5.0))      # band fails

    def test_s_window(self):
        query = BandSelectJoinQuery(
            band=Interval(-1, 2), range_a=Interval(0, 1), range_c=Interval(0, 1)
        )
        assert query.s_window(TableR().new_row(0.0, 10.0)) == Interval(9.0, 12.0)


@pytest.mark.parametrize("cls", [BSJPerQuery, BSJSSI])
class TestAgainstOracle:
    def test_matches_bruteforce(self, cls):
        rng, table_s, table_r, queries = make_workload(seed=501)
        strategy = cls(table_s, table_r)
        for query in queries:
            strategy.add_query(query)
        for __ in range(30):
            r = table_r.new_row(rng.uniform(0, 50), rng.uniform(0, 100))
            assert norm(strategy.process_r(r)) == norm(
                brute_force_band_select_join(queries, r, table_s)
            )

    def test_removal(self, cls):
        rng, table_s, table_r, queries = make_workload(seed=502)
        strategy = cls(table_s, table_r)
        for query in queries:
            strategy.add_query(query)
        for query in queries[::2]:
            strategy.remove_query(query)
        kept = queries[1::2]
        r = table_r.new_row(20.0, 50.0)
        assert norm(strategy.process_r(r)) == norm(
            brute_force_band_select_join(kept, r, table_s)
        )

    def test_duplicate_rejected(self, cls):
        strategy = cls(TableS())
        query = BandSelectJoinQuery(Interval(0, 1), Interval(0, 1), Interval(0, 1))
        strategy.add_query(query)
        with pytest.raises(ValueError):
            strategy.add_query(query)

    def test_empty_table(self, cls):
        strategy = cls(TableS(), TableR())
        strategy.add_query(
            BandSelectJoinQuery(Interval(-1, 1), Interval(0, 100), Interval(0, 100))
        )
        assert strategy.process_r(strategy.table_r.new_row(5.0, 5.0)) == {}


def test_strategies_agree_under_churn():
    rng, table_s, table_r, queries = make_workload(seed=503)
    per_query = BSJPerQuery(table_s, table_r)
    ssi = BSJSSI(table_s, table_r)
    live = []
    for step in range(200):
        if live and rng.random() < 0.4:
            victim = live.pop(rng.randrange(len(live)))
            per_query.remove_query(victim)
            ssi.remove_query(victim)
        else:
            band_lo = rng.uniform(-10, 10)
            query = BandSelectJoinQuery(
                band=Interval(band_lo, band_lo + rng.uniform(0, 4)),
                range_a=Interval(rng.uniform(0, 40), rng.uniform(40, 60)),
                range_c=Interval(rng.uniform(0, 40), rng.uniform(40, 60)),
            )
            live.append(query)
            per_query.add_query(query)
            ssi.add_query(query)
        if step % 25 == 24:
            r = table_r.new_row(rng.uniform(0, 60), rng.uniform(0, 100))
            assert norm(per_query.process_r(r)) == norm(ssi.process_r(r))
    assert ssi.group_count <= len(live) or not live
