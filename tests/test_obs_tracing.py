"""Tests for the tracing span API: null fast path, ring-buffer semantics,
Chrome trace export."""

import json
import threading

import pytest

import os

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    RingTracer,
    SpanRecord,
    new_trace_id,
    to_chrome_trace,
    write_chrome_trace,
)


class TestNullTracer:
    def test_span_is_shared_singleton(self):
        a = NULL_TRACER.span("x")
        b = NULL_TRACER.span("y", shard=3)
        assert a is b  # no allocation per span when tracing is off

    def test_span_is_inert_context_manager(self):
        with NULL_TRACER.span("anything") as span:
            assert span is NULL_TRACER.span("other")

    def test_fresh_instances_share_the_span(self):
        assert NullTracer().span("a") is NULL_TRACER.span("b")


class TestRingTracer:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)

    def test_records_closed_spans(self):
        tracer = RingTracer(capacity=8)
        with tracer.span("outer", shard=1):
            pass
        assert tracer.recorded == 1
        assert tracer.dropped == 0
        [record] = tracer.snapshot()
        assert record.name == "outer"
        assert record.args == {"shard": 1}
        assert record.dur_ns >= 0
        assert record.tid == threading.get_ident()
        assert record.end_ns == record.ts_ns + record.dur_ns

    def test_no_args_stored_as_none(self):
        tracer = RingTracer(capacity=4)
        with tracer.span("bare"):
            pass
        [record] = tracer.snapshot()
        assert record.args is None

    def test_nested_spans_close_inner_first(self):
        tracer = RingTracer(capacity=8)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [record.name for record in tracer.snapshot()]
        assert names == ["inner", "outer"]
        inner, outer = tracer.snapshot()
        # The inner span's window sits inside the outer one.
        assert outer.ts_ns <= inner.ts_ns
        assert inner.end_ns <= outer.end_ns

    def test_overflow_overwrites_oldest_and_counts_drops(self):
        tracer = RingTracer(capacity=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.recorded == 10
        assert tracer.dropped == 6
        names = [record.name for record in tracer.snapshot()]
        assert names == ["s6", "s7", "s8", "s9"]  # oldest first, newest kept

    def test_snapshot_below_capacity_in_order(self):
        tracer = RingTracer(capacity=16)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.snapshot()] == [f"s{i}" for i in range(5)]

    def test_clear_resets_everything(self):
        tracer = RingTracer(capacity=4)
        for i in range(6):
            with tracer.span(f"s{i}"):
                pass
        tracer.clear()
        assert tracer.recorded == 0
        assert tracer.dropped == 0
        assert tracer.snapshot() == []

    def test_span_survives_exception(self):
        tracer = RingTracer(capacity=4)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [r.name for r in tracer.snapshot()] == ["doomed"]

    def test_manual_enter_exit_pair(self):
        """Start/stop across separate callbacks (the rebuild-listener use)."""
        tracer = RingTracer(capacity=4)
        span = tracer.span("manual")
        span.__enter__()
        span.__exit__(None, None, None)
        assert [r.name for r in tracer.snapshot()] == ["manual"]


class TestChromeTraceExport:
    def make_spans(self):
        return [
            SpanRecord(name="a", ts_ns=5_000, dur_ns=2_000, tid=7),
            SpanRecord(name="b", ts_ns=6_000, dur_ns=500, tid=8, args={"k": 1}),
        ]

    def test_events_rebased_to_microseconds(self):
        trace = to_chrome_trace(self.make_spans())
        assert trace["displayTimeUnit"] == "ms"
        first, second = trace["traceEvents"]
        assert first == {
            "name": "a", "ph": "X", "ts": 0.0, "dur": 2.0, "pid": 1, "tid": 7,
        }
        assert second["ts"] == 1.0 and second["args"] == {"k": 1}

    def test_empty_spans(self):
        assert to_chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_ring_tracer_export_reports_drops(self):
        tracer = RingTracer(capacity=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        trace = tracer.to_chrome_trace()
        assert trace["otherData"]["dropped_spans"] == 3
        assert trace["otherData"]["trace_id"] == tracer.trace_id
        assert len(trace["traceEvents"]) == 2

    def test_write_chrome_trace_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        tracer = RingTracer(capacity=8)
        with tracer.span("phase", shard=0):
            pass
        written = write_chrome_trace(str(path), tracer)
        assert written == 1
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"][0]["name"] == "phase"
        assert loaded["otherData"]["dropped_spans"] == 0

    def test_write_chrome_trace_accepts_plain_spans(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(str(path), self.make_spans())
        assert written == 2
        loaded = json.loads(path.read_text())
        assert "otherData" not in loaded


class TestTracePropagation:
    def test_new_trace_id_is_nonzero_and_63_bit(self):
        for _ in range(50):
            tid = new_trace_id()
            assert 0 < tid < 2**63

    def test_tracer_mints_trace_id_and_stamps_spans(self):
        tracer = RingTracer(capacity=4)
        assert tracer.trace_id != 0
        with tracer.span("x"):
            pass
        [record] = tracer.snapshot()
        assert record.trace_id == tracer.trace_id
        assert record.pid == os.getpid()
        assert record.span_id != 0

    def test_adopt_trace_id(self):
        tracer = RingTracer(capacity=4)
        tracer.adopt_trace_id(42)
        assert tracer.trace_id == 42
        tracer.adopt_trace_id(0)  # zero = "no context", ignored
        assert tracer.trace_id == 42
        with tracer.span("x"):
            pass
        assert tracer.snapshot()[0].trace_id == 42

    def test_remote_parent_stamps_top_level_spans(self):
        tracer = RingTracer(capacity=8)
        tracer.set_remote_parent(777)
        with tracer.span("top"):
            pass
        [record] = tracer.snapshot()
        assert record.parent_id == 777

    def test_open_span_exposes_its_id_for_propagation(self):
        tracer = RingTracer(capacity=8)
        with tracer.span("roundtrip") as span:
            assert span.span_id != 0  # readable while open (BATCH stamping)
        [record] = tracer.snapshot()
        assert record.span_id == span.span_id

    def test_span_ids_are_unique_and_pid_scoped(self):
        tracer = RingTracer(capacity=16)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        ids = [r.span_id for r in tracer.snapshot()]
        assert len(set(ids)) == 5
        assert all(sid >> 24 == os.getpid() for sid in ids)

    def test_record_foreign_span_preserves_identity(self):
        tracer = RingTracer(capacity=4)
        foreign = SpanRecord(
            name="worker.batch", ts_ns=10, dur_ns=5, tid=1,
            pid=99999, trace_id=tracer.trace_id, span_id=7, parent_id=3,
        )
        tracer.record(foreign)
        [record] = tracer.snapshot()
        assert record.pid == 99999
        assert record.span_id == 7

    def test_since_returns_only_fresh_spans(self):
        tracer = RingTracer(capacity=16)
        with tracer.span("a"):
            pass
        fresh, seen = tracer.since(0)
        assert [r.name for r in fresh] == ["a"] and seen == 1
        with tracer.span("b"):
            pass
        fresh, seen = tracer.since(seen)
        assert [r.name for r in fresh] == ["b"] and seen == 2
        fresh, seen = tracer.since(seen)
        assert fresh == [] and seen == 2

    def test_process_lanes_emit_metadata_events(self):
        tracer = RingTracer(capacity=8)
        tracer.set_process_name(tracer.pid, "pipeline (parent)")
        tracer.set_process_name(4242, "shard0 worker (pid 4242)")
        with tracer.span("x"):
            pass
        trace = tracer.to_chrome_trace()
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        named = {
            e["pid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "process_name"
        }
        assert named[tracer.pid] == "pipeline (parent)"
        assert named[4242] == "shard0 worker (pid 4242)"
        # metadata sorts before the X events
        assert trace["traceEvents"][0]["ph"] == "M"

    def test_x_events_carry_trace_context_args(self):
        tracer = RingTracer(capacity=4)
        with tracer.span("x", shard=1):
            pass
        trace = tracer.to_chrome_trace()
        [event] = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert event["pid"] == os.getpid()
        assert event["args"]["shard"] == 1
        assert event["args"]["trace_id"] == tracer.trace_id
        assert event["args"]["span_id"] != 0
