"""Tests for the histogram error metrics."""

import pytest

from repro.core.intervals import Interval
from repro.histogram.errors import average_relative_error, mean_squared_relative_error
from repro.histogram.frequency import Density, IntervalFrequency
from repro.histogram.step import StepFunction


def test_perfect_histogram_zero_error():
    freq = IntervalFrequency([Interval(0, 10), Interval(5, 10)])
    exact = freq.step_function()
    assert mean_squared_relative_error(exact, freq) == pytest.approx(0.0, abs=1e-12)
    assert average_relative_error(exact, freq, [1.0, 6.0, 9.0]) == pytest.approx(0.0)


def test_relative_error_scales_by_truth():
    freq = IntervalFrequency([Interval(0, 10)] * 4)  # f = 4 on [0, 10]
    over = StepFunction((0.0, 10.0), (6.0,))  # off by 2 on truth 4
    assert average_relative_error(over, freq, [5.0]) == pytest.approx(0.5)
    assert mean_squared_relative_error(over, freq) == pytest.approx(0.25)


def test_zero_truth_clamped_to_one():
    freq = IntervalFrequency([Interval(0, 1)])
    hist = StepFunction((0.0, 10.0), (3.0,))
    # At x=5 truth is 0; denominator clamps to 1 -> error 3.
    assert average_relative_error(hist, freq, [5.0]) == pytest.approx(3.0)


def test_average_relative_error_requires_points():
    freq = IntervalFrequency([Interval(0, 1)])
    hist = StepFunction((0.0, 1.0), (1.0,))
    with pytest.raises(ValueError):
        average_relative_error(hist, freq, [])


def test_mean_squared_error_respects_phi_support():
    freq = IntervalFrequency([Interval(0, 10)])
    # Histogram wrong only on [5, 10]; phi concentrated on [0, 5].
    hist = StepFunction((0.0, 5.0, 10.0), (1.0, 9.0))
    good_phi = Density(0.0, 5.0)
    bad_phi = Density(5.0, 10.0)
    assert mean_squared_relative_error(hist, freq, good_phi) == pytest.approx(0.0)
    assert mean_squared_relative_error(hist, freq, bad_phi) == pytest.approx(64.0)
