"""Tests for the canonical stabbing partition (Lemma 1)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval, common_intersection
from repro.core.stabbing import (
    canonical_stabbing_partition,
    minimum_stabbing_set,
    stabbing_number,
)

from conftest import int_interval_strategy


def brute_force_tau(intervals) -> int:
    """Smallest stabbing-partition size by exhaustive search over endpoint
    stabbing sets (exponential; only for tiny inputs)."""
    if not intervals:
        return 0
    candidates = sorted({iv.lo for iv in intervals} | {iv.hi for iv in intervals})
    for k in range(1, len(intervals) + 1):
        for points in itertools.combinations(candidates, k):
            if all(any(iv.contains(p) for p in points) for iv in intervals):
                return k
    return len(intervals)


class TestCanonical:
    def test_empty(self):
        partition = canonical_stabbing_partition([])
        assert partition.size == 0
        assert partition.total_items() == 0

    def test_single_interval(self):
        partition = canonical_stabbing_partition([Interval(1, 2)])
        assert partition.size == 1
        partition.validate()

    def test_disjoint_intervals_each_get_a_group(self):
        intervals = [Interval(i * 10, i * 10 + 1) for i in range(5)]
        partition = canonical_stabbing_partition(intervals)
        assert partition.size == 5

    def test_nested_intervals_one_group(self):
        intervals = [Interval(0, 100), Interval(10, 90), Interval(40, 60)]
        partition = canonical_stabbing_partition(intervals)
        assert partition.size == 1
        assert partition.groups[0].common == Interval(40, 60)

    def test_figure_1_style_example(self):
        # Two clusters plus stragglers, as in the paper's Figure 1.
        cluster1 = [Interval(0, 10), Interval(2, 9), Interval(4, 8), Interval(5, 12)]
        cluster2 = [Interval(20, 30), Interval(22, 28), Interval(25, 33)]
        stragglers = [Interval(14, 15)]
        partition = canonical_stabbing_partition(cluster1 + cluster2 + stragglers)
        assert partition.size == 3
        partition.validate()

    def test_stabbing_point_is_common_right_endpoint(self):
        partition = canonical_stabbing_partition([Interval(0, 5), Interval(3, 9)])
        group = partition.groups[0]
        assert group.stabbing_point == 5.0

    @given(st.lists(int_interval_strategy(), max_size=60))
    @settings(max_examples=100)
    def test_partition_is_valid(self, intervals):
        partition = canonical_stabbing_partition(intervals)
        partition.validate()
        assert partition.total_items() == len(intervals)

    @given(st.lists(int_interval_strategy(-10, 10), min_size=1, max_size=7))
    @settings(max_examples=60, deadline=None)
    def test_greedy_is_optimal(self, intervals):
        assert stabbing_number(intervals) == brute_force_tau(intervals)

    @given(st.lists(int_interval_strategy(), min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_stabbing_set_stabs_everything(self, intervals):
        points = minimum_stabbing_set(intervals)
        for interval in intervals:
            assert any(interval.contains(p) for p in points)

    @given(st.lists(int_interval_strategy(), min_size=2, max_size=40))
    @settings(max_examples=60)
    def test_monotone_under_subsets(self, intervals):
        # tau of a subset never exceeds tau of the whole set.
        assert stabbing_number(intervals[: len(intervals) // 2]) <= stabbing_number(intervals)


class TestPartitionQueries:
    def make(self):
        intervals = (
            [Interval(0, 10)] * 0
            + [Interval(float(i), float(i + 2)) for i in [0, 1, 1, 1, 20, 21, 40]]
        )
        return canonical_stabbing_partition(intervals)

    def test_coverage_of_top(self):
        partition = self.make()
        assert partition.coverage_of_top(0) == 0.0
        assert partition.coverage_of_top(1) == pytest.approx(4 / 7)
        assert partition.coverage_of_top(99) == 1.0

    def test_hotspots_threshold(self):
        partition = self.make()
        hotspots = partition.hotspots(alpha=0.5)
        assert len(hotspots) == 1
        assert hotspots[0].size == 4
        assert partition.hotspots(alpha=0.01) == partition.groups

    def test_hotspots_invalid_alpha(self):
        with pytest.raises(ValueError):
            self.make().hotspots(0.0)

    def test_interval_of_indirection(self):
        class Query:
            def __init__(self, interval):
                self.interval = interval

        queries = [Query(Interval(0, 5)), Query(Interval(3, 8))]
        partition = canonical_stabbing_partition(queries, lambda q: q.interval)
        assert partition.size == 1
        partition.validate()

    def test_coverage_zero_items(self):
        assert canonical_stabbing_partition([]).coverage_of_top(5) == 0.0
