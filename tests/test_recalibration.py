"""Tests for the lazy partition's recalibration path: the relaxed trigger
recomputes tau and keeps the partition when it is still within bound,
rebuilding only on genuine drift."""

import random

from repro.core.intervals import Interval
from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.ssi import StabbingSetIndex
from repro.core.stabbing import stabbing_number


def churn(partition, rounds, seed, anchors):
    """Insert/delete around fixed anchors, returning the live items."""
    rng = random.Random(seed)
    live = []
    for __ in range(rounds):
        if live and rng.random() < 0.5:
            partition.delete(live.pop(rng.randrange(len(live))))
        else:
            anchor = rng.choice(anchors)
            interval = Interval(anchor - rng.uniform(0.1, 3), anchor + rng.uniform(0.1, 3))
            partition.insert(interval)
            live.append(interval)
    return live


def test_clustered_churn_recalibrates_without_rebuilding():
    anchors = [10.0 * i for i in range(1, 9)]
    partition = LazyStabbingPartition(epsilon=3.0)
    live = churn(partition, 4_000, seed=3, anchors=anchors)
    # The clustered stream stays near tau, so triggers resolve as cheap
    # recalibrations, not rebuilds.
    assert partition.recalibration_count > 0
    assert partition.reconstruction_count == 0
    tau = stabbing_number(live)
    assert len(partition) <= 4 * tau + 1e-9
    partition.validate()


def test_drift_forces_rebuild():
    # Scattered singletons with no reuse force |P| past the bound, so the
    # recalibration check fails and a genuine rebuild runs.
    partition = LazyStabbingPartition(epsilon=0.5, reuse_overlapping_group=False)
    for i in range(50):
        partition.insert(Interval(0.0 + i * 0.001, 100.0))  # all overlap: tau = 1
    assert partition.reconstruction_count > 0
    assert len(partition) == 1
    partition.validate()


def test_listeners_untouched_by_recalibration():
    """Recalibration must not fire any listener churn (that is its point)."""
    anchors = [5.0, 50.0, 500.0]
    partition = LazyStabbingPartition(epsilon=3.0)
    rebuilds = []

    class Listener:
        def on_group_created(self, group):
            pass

        def on_group_destroyed(self, group):
            pass

        def on_item_added(self, group, item):
            pass

        def on_item_removed(self, group, item):
            pass

        def on_rebuilt(self, partition):
            rebuilds.append(True)

    partition.add_listener(Listener())
    churn(partition, 2_000, seed=5, anchors=anchors)
    assert partition.recalibration_count > 0
    assert len(rebuilds) == partition.reconstruction_count


def test_ssi_structures_consistent_across_recalibrations():
    anchors = [3.0, 30.0, 300.0, 3_000.0]
    partition = LazyStabbingPartition(epsilon=1.0)
    ssi = StabbingSetIndex(
        partition,
        make_structure=set,
        add_item=lambda s, item: s.add(item),
        remove_item=lambda s, item: s.discard(item),
    )
    churn(partition, 3_000, seed=7, anchors=anchors)
    assert ssi.group_count() == len(partition.groups)
    for group in partition.groups:
        assert ssi.structure_of(group) == set(group.items)


def test_sweep_tau_matches_canonical():
    rng = random.Random(11)
    partition = LazyStabbingPartition(epsilon=1.0)
    items = [
        Interval(lo, lo + rng.uniform(0, 10))
        for lo in (rng.uniform(0, 100) for __ in range(300))
    ]
    assert partition._sweep_tau(items) == stabbing_number(items)
    assert partition._sweep_tau([]) == 0
