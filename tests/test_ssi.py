"""Tests for the generic stabbing set index framework: per-group structures
stay synchronized with the partition through updates and reconstructions."""

import random

from repro.core.intervals import Interval
from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.refined_partition import RefinedStabbingPartition
from repro.core.ssi import StabbingSetIndex


def make_ssi(partition):
    """SSI whose per-group structure is a plain set of items."""
    return StabbingSetIndex(
        partition,
        make_structure=set,
        add_item=lambda s, item: s.add(item),
        remove_item=lambda s, item: s.discard(item),
    )


def assert_synchronized(ssi):
    partition = ssi.partition
    assert ssi.group_count() == len(partition.groups)
    for group in partition.groups:
        structure = ssi.structure_of(group)
        assert structure == set(group.items), "per-group structure out of sync"


class TestWithLazyPartition:
    def test_bootstrap_from_existing_items(self):
        intervals = [Interval(0, 10), Interval(2, 8), Interval(50, 60)]
        partition = LazyStabbingPartition(intervals)
        ssi = make_ssi(partition)
        assert_synchronized(ssi)
        assert len(ssi) == 3

    def test_insert_delete_via_ssi(self):
        partition = LazyStabbingPartition(epsilon=100.0)
        ssi = make_ssi(partition)
        a, b = Interval(0, 10), Interval(5, 15)
        ssi.insert(a)
        ssi.insert(b)
        assert_synchronized(ssi)
        ssi.delete(a)
        assert_synchronized(ssi)
        assert len(ssi) == 1

    def test_groups_iteration_yields_stabbing_points(self):
        partition = LazyStabbingPartition([Interval(0, 10), Interval(20, 30)])
        ssi = make_ssi(partition)
        points = sorted(point for point, __ in ssi.groups())
        assert points == [10.0, 30.0]

    def test_survives_reconstruction(self):
        rng = random.Random(1)
        partition = LazyStabbingPartition(epsilon=0.5, trigger="simple")
        ssi = make_ssi(partition)
        live = []
        for __ in range(200):
            lo = rng.uniform(0, 100)
            interval = Interval(lo, lo + rng.uniform(0, 10))
            ssi.insert(interval)
            live.append(interval)
            if rng.random() < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                ssi.delete(victim)
            assert_synchronized(ssi)
        assert ssi.rebuild_count == partition.reconstruction_count
        assert ssi.rebuild_count > 0


class TestWithRefinedPartition:
    def test_survives_reconstruction(self):
        rng = random.Random(2)
        partition = RefinedStabbingPartition(epsilon=1.0, seed=3)
        ssi = make_ssi(partition)
        live = []
        for __ in range(200):
            lo = rng.uniform(0, 100)
            interval = Interval(lo, lo + rng.uniform(0, 10))
            ssi.insert(interval)
            live.append(interval)
            if rng.random() < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                ssi.delete(victim)
            assert_synchronized(ssi)
        assert ssi.rebuild_count > 0
