"""The dynamic race witness (``REPRO_RACECHECK=1``): lock-order cycle
detection fails fast on a seeded deadlock, the guarded-state barrier
rejects unlocked writes, and everything degrades to plain locks when the
variable is unset."""

import threading

import pytest

from repro.analysis import racecheck
from repro.analysis.racecheck import (
    GuardedStateViolation,
    LockOrderViolation,
    TrackedLock,
    guarded,
    new_lock,
    new_rlock,
)


@pytest.fixture
def witness_on(monkeypatch):
    monkeypatch.setenv(racecheck.ENV_VAR, "1")
    racecheck.reset()
    yield
    racecheck.reset()


@pytest.fixture
def witness_off(monkeypatch):
    monkeypatch.delenv(racecheck.ENV_VAR, raising=False)
    racecheck.reset()
    yield
    racecheck.reset()


class TestSeededDeadlock:
    def test_cycle_fails_fast_without_blocking(self, witness_on):
        """The canonical AB/BA deadlock: thread 1 establishes a -> b, the
        main thread then tries b -> a.  The witness raises on the *edge*,
        before the inner acquire, so no interleaving ever blocks."""
        a, b = new_lock("A"), new_lock("B")

        def establish():
            with a:
                with b:
                    pass

        t = threading.Thread(target=establish)
        t.start()
        t.join(timeout=5.0)
        assert not t.is_alive()

        with pytest.raises(LockOrderViolation, match="lock-order cycle"):
            with b:
                with a:
                    pass

    def test_disabled_bypass(self, witness_off):
        """Same seeded deadlock pattern, witness off: plain locks, no
        tracking, no failure (single-threaded, so no actual deadlock)."""
        a, b = new_lock("A"), new_lock("B")
        assert not isinstance(a, TrackedLock)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert racecheck.report()["locks_created"] == 0

    def test_non_reentrant_self_acquisition(self, witness_on):
        c = new_lock("C")
        with c:
            with pytest.raises(LockOrderViolation, match="self-deadlock"):
                c.acquire()

    def test_rlock_reentry_is_fine(self, witness_on):
        r = new_rlock("R")
        with r:
            with r:
                pass
        assert racecheck.report()["acquisitions"] == 2

    def test_consistent_order_is_clean(self, witness_on):
        a, b = new_lock("A"), new_lock("B")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert racecheck.report()["edges"] == ["A -> B"]


class TestGuardedBarrier:
    def test_unlocked_write_raises(self, witness_on):
        @guarded
        class Box:
            def __init__(self):
                self._lock = new_lock("Box._lock")
                self._v = 0  # guarded-by: _lock

            def set(self, v):
                with self._lock:
                    self._v = v

        box = Box()
        box.set(5)
        assert box._v == 5
        with pytest.raises(GuardedStateViolation, match="without holding"):
            box._v = 9
        assert racecheck.report()["guard_checks"] >= 2

    def test_init_writes_are_exempt(self, witness_on):
        @guarded
        class Box:
            def __init__(self):
                self._lock = new_lock("Box._lock")
                self._v = 41  # guarded-by: _lock
                self._v += 1  # still under construction

        assert Box()._v == 42

    def test_unannotated_attrs_unaffected(self, witness_on):
        @guarded
        class Box:
            def __init__(self):
                self._lock = new_lock("Box._lock")
                self._v = 0  # guarded-by: _lock
                self.free = 0

        box = Box()
        box.free = 7  # no declaration, no barrier
        assert box.free == 7

    def test_decorator_is_identity_when_disabled(self, witness_off):
        class Box:
            def __init__(self):
                self._lock = new_lock("Box._lock")
                self._v = 0  # guarded-by: _lock

        assert guarded(Box) is Box
        Box()._v = 9  # no barrier installed

    def test_works_with_slots(self, witness_on):
        @guarded
        class Slotted:
            __slots__ = ("_lock", "_v")

            def __init__(self):
                self._lock = new_lock("Slotted._lock")
                self._v = 0  # guarded-by: _lock

        s = Slotted()
        with pytest.raises(GuardedStateViolation):
            s._v = 1


class TestRuntimeIntegration:
    def test_metrics_instruments_use_tracked_locks(self, witness_on):
        """The runtime factories read the env per call, so instruments
        created while the witness is on are tracked even though the module
        was imported earlier."""
        from repro.runtime.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.histogram("y").observe(3.0)
        report = racecheck.report()
        assert report["locks_created"] >= 3
        assert report["acquisitions"] >= 4

    def test_tracer_export_is_single_acquisition(self, witness_on):
        """`to_chrome_trace` takes the ring state in one hold (the RA203
        torn-read fix): nested or repeated acquisition would show up as
        extra acquisitions per export."""
        from repro.obs.tracing import RingTracer

        tracer = RingTracer(capacity=8)
        with tracer.span("phase"):
            pass
        before = racecheck.report()["acquisitions"]
        tracer.to_chrome_trace()
        assert racecheck.report()["acquisitions"] == before + 1

    def test_report_shape(self, witness_on):
        report = racecheck.report()
        assert set(report) == {
            "locks_created", "acquisitions", "guard_checks", "edges",
        }
        assert report["edges"] == []


class TestCliVerb:
    def test_racecheck_verb_runs_clean(self, monkeypatch):
        monkeypatch.setenv(racecheck.ENV_VAR, "1")
        racecheck.reset()
        from repro.cli import main

        assert main([
            "racecheck", "--events", "300", "--queries", "30", "--shards", "2",
        ]) == 0
        racecheck.reset()
