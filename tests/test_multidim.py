"""Tests for multi-dimensional stabbing partitions and the box
subscription indexes (Section 6 extension)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multidim import Box, BoxGroup, DynamicBoxPartition, sweep_box_partition
from repro.core.stabbing import canonical_stabbing_partition
from repro.core.intervals import Interval
from repro.operators.multi_attribute import (
    BoxSubscription,
    RTreeBoxIndex,
    ScanBoxIndex,
    SSIBoxIndex,
)


def box2(xlo, ylo, xhi, yhi):
    return Box((float(xlo), float(ylo)), (float(xhi), float(yhi)))


def box_strategy(limit=20, max_side=12):
    coord = st.integers(-limit, limit)
    side = st.integers(0, max_side)
    return st.builds(
        lambda x, y, w, h: box2(x, y, x + w, y + h), coord, coord, side, side
    )


class TestBox:
    def test_validation(self):
        with pytest.raises(ValueError):
            Box((1.0,), (0.0,))
        with pytest.raises(ValueError):
            Box((0.0,), (1.0, 2.0))
        with pytest.raises(ValueError):
            Box((), ())

    def test_contains_closed(self):
        box = box2(0, 0, 2, 3)
        assert box.contains((0, 0)) and box.contains((2, 3))
        assert not box.contains((2.001, 1))
        with pytest.raises(ValueError):
            box.contains((1,))

    def test_intersect_and_overlaps(self):
        a = box2(0, 0, 4, 4)
        b = box2(2, 2, 6, 6)
        assert a.intersect(b) == box2(2, 2, 4, 4)
        assert a.overlaps(b)
        c = box2(5, 5, 6, 6)
        assert a.intersect(c) is None
        assert not a.overlaps(c)

    def test_from_intervals(self):
        box = Box.from_intervals(Interval(0, 1), Interval(2, 3), Interval(4, 5))
        assert box.dimensions == 3
        assert box.contains((0.5, 2.5, 4.5))

    def test_center(self):
        assert box2(0, 0, 4, 2).center == (2.0, 1.0)


class TestSweepPartition:
    def test_valid_partition(self):
        rng = random.Random(1)
        boxes = [
            box2(x, y, x + rng.randrange(1, 8), y + rng.randrange(1, 8))
            for x, y in ((rng.randrange(30), rng.randrange(30)) for __ in range(60))
        ]
        groups = sweep_box_partition(boxes)
        assert sum(len(g) for g in groups) == len(boxes)
        for members in groups:
            common = members[0]
            for box in members[1:]:
                common = common.intersect(box)
                assert common is not None

    def test_matches_canonical_in_one_dimension(self):
        rng = random.Random(2)
        intervals = [Interval(lo, lo + rng.uniform(0, 5)) for lo in (rng.uniform(0, 50) for __ in range(80))]
        boxes = [Box((iv.lo,), (iv.hi,)) for iv in intervals]
        groups_1d = sweep_box_partition(boxes)
        canonical = canonical_stabbing_partition(intervals)
        assert len(groups_1d) == canonical.size

    @given(st.lists(box_strategy(), min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_every_group_has_a_stabbing_point(self, boxes):
        for members in sweep_box_partition(boxes):
            common = members[0]
            for box in members[1:]:
                common = common.intersect(box)
            assert common is not None
            assert all(box.contains(common.center) for box in members)


class TestBoxGroup:
    def test_common_and_removal_recompute(self):
        group = BoxGroup(lambda b: b)
        a, b = box2(0, 0, 10, 10), box2(4, 4, 20, 20)
        group.add(a)
        group.add(b)
        assert group.common == box2(4, 4, 10, 10)
        group.remove(b)
        assert group.common == box2(0, 0, 10, 10)
        assert a in group and b not in group

    def test_would_remain_stabbed(self):
        group = BoxGroup(lambda b: b)
        group.add(box2(0, 0, 10, 10))
        assert group.would_remain_stabbed(box2(5, 5, 30, 30))
        assert not group.would_remain_stabbed(box2(11, 0, 30, 30))


class TestDynamicBoxPartition:
    @given(st.lists(box_strategy(), min_size=1, max_size=50), st.data())
    @settings(max_examples=40, deadline=None)
    def test_valid_under_updates(self, boxes, data):
        partition = DynamicBoxPartition(epsilon=1.0)
        live = []
        for box in boxes:
            fresh = Box(box.lo, box.hi)
            partition.insert(fresh)
            live.append(fresh)
            if live and data.draw(st.integers(0, 3)) == 0:
                victim = live.pop(data.draw(st.integers(0, len(live) - 1)))
                partition.delete(victim)
            partition.validate()
        assert partition.total_items() == len(live)
        # Budget vs the sweep heuristic on the live set.
        heuristic = len(sweep_box_partition(live)) if live else 0
        assert len(partition) <= 2 * heuristic + 1e-9

    def test_duplicate_rejected(self):
        partition = DynamicBoxPartition()
        box = box2(0, 0, 1, 1)
        partition.insert(box)
        with pytest.raises(ValueError):
            partition.insert(box)


INDEXES = [ScanBoxIndex, RTreeBoxIndex, SSIBoxIndex]


@pytest.mark.parametrize("cls", INDEXES)
class TestBoxIndexes:
    def test_basic(self, cls):
        index = cls(2)
        a = BoxSubscription(box2(0, 0, 10, 10))
        b = BoxSubscription(box2(5, 5, 15, 15))
        index.add(a)
        index.add(b)
        assert sorted(s.qid for s in index.match((7, 7))) == sorted([a.qid, b.qid])
        assert [s.qid for s in index.match((1, 1))] == [a.qid]
        assert index.match((20, 20)) == []

    def test_removal(self, cls):
        index = cls(2)
        subs = [BoxSubscription(box2(0, 0, 10, 10)) for __ in range(6)]
        for s in subs:
            index.add(s)
        for s in subs[:3]:
            index.remove(s)
        assert sorted(s.qid for s in index.match((5, 5))) == sorted(s.qid for s in subs[3:])

    def test_dimension_mismatch(self, cls):
        index = cls(2)
        with pytest.raises(ValueError):
            index.add(BoxSubscription(Box((0.0,), (1.0,))))


def test_all_box_indexes_agree_randomized():
    rng = random.Random(7)
    indexes = [ScanBoxIndex(2), RTreeBoxIndex(2), SSIBoxIndex(2)]
    live = []
    for step in range(400):
        if live and rng.random() < 0.4:
            victim = live.pop(rng.randrange(len(live)))
            for index in indexes:
                index.remove(victim)
        else:
            if rng.random() < 0.7:  # clustered
                cx, cy = rng.choice([(10, 10), (50, 50), (80, 20)])
                box = box2(
                    cx - rng.uniform(0, 5), cy - rng.uniform(0, 5),
                    cx + rng.uniform(0, 5), cy + rng.uniform(0, 5),
                )
            else:
                x, y = rng.uniform(0, 90), rng.uniform(0, 90)
                box = box2(x, y, x + rng.uniform(0, 10), y + rng.uniform(0, 10))
            subscription = BoxSubscription(box)
            live.append(subscription)
            for index in indexes:
                index.add(subscription)
        if step % 20 == 0:
            point = (rng.uniform(0, 100), rng.uniform(0, 100))
            want = sorted(s.qid for s in live if s.matches(point))
            for index in indexes:
                assert sorted(s.qid for s in index.match(point)) == want, index.name


def test_ssi_box_index_three_dimensions():
    rng = random.Random(8)
    scan = ScanBoxIndex(3)
    ssi = SSIBoxIndex(3)
    live = []
    for __ in range(150):
        lo = tuple(rng.uniform(0, 50) for __ in range(3))
        hi = tuple(v + rng.uniform(0, 10) for v in lo)
        subscription = BoxSubscription(Box(lo, hi))
        live.append(subscription)
        scan.add(subscription)
        ssi.add(subscription)
    for __ in range(20):
        point = tuple(rng.uniform(0, 60) for __ in range(3))
        assert sorted(s.qid for s in ssi.match(point)) == sorted(
            s.qid for s in scan.match(point)
        )
