"""Engine-level tests for the lint framework: registry, suppression,
fingerprints, baseline ratchet, file walking.  Rule *behaviour* is covered
per-rule in test_analysis_rules.py; here we exercise the machinery the
rules plug into."""

import json

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    Severity,
    all_rules,
    lint_paths,
    lint_source,
    rule_catalog,
    render_json,
)
from repro.analysis.engine import PARSE_ERROR_RULE, iter_python_files


VIRTUAL = "src/repro/core/fake_module.py"


def by_rule(findings, code):
    return [f for f in findings if f.rule == code]


class TestRegistry:
    def test_catalog_contains_all_project_rules(self):
        codes = {entry["code"] for entry in rule_catalog()}
        assert {"RA001", "RA002", "RA003", "RA004", "RA005", "RA006"} <= codes
        assert {"RA101", "RA102", "RA103"} <= codes

    def test_all_rules_sorted_and_instantiated(self):
        rules = all_rules()
        codes = [r.code for r in rules]
        assert codes == sorted(codes)
        assert all(isinstance(r.severity, Severity) for r in rules)

    def test_select_restricts_and_rejects_unknown(self):
        only = all_rules(["RA002"])
        assert [r.code for r in only] == ["RA002"]
        with pytest.raises(ValueError, match="RA777"):
            all_rules(["RA777"])


class TestSuppression:
    def test_noqa_with_matching_code_suppresses(self):
        src = "import numpy  # repro: noqa[RA002]\n"
        assert lint_source(src, VIRTUAL, all_rules(["RA002"])) == []

    def test_noqa_with_other_code_does_not_suppress(self):
        src = "import numpy  # repro: noqa[RA001]\n"
        assert len(by_rule(lint_source(src, VIRTUAL), "RA002")) == 1

    def test_bare_noqa_suppresses_everything(self):
        src = "import numpy  # repro: noqa\n"
        assert lint_source(src, VIRTUAL) == []

    def test_noqa_accepts_multiple_codes(self):
        src = "import numpy  # repro: noqa[RA001, RA002]\n"
        assert lint_source(src, VIRTUAL, all_rules(["RA002"])) == []

    def test_plain_flake8_noqa_is_not_ours(self):
        src = "import numpy  # noqa\n"
        assert len(by_rule(lint_source(src, VIRTUAL), "RA002")) == 1


class TestParseErrors:
    def test_syntax_error_becomes_ra000(self):
        findings = lint_source("def broken(:\n", VIRTUAL)
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]
        assert "syntax error" in findings[0].message


class TestFingerprints:
    def test_fingerprint_excludes_position(self):
        a = Finding("RA002", "p.py", 1, 0, "msg")
        b = Finding("RA002", "p.py", 99, 4, "msg")
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != Finding("RA001", "p.py", 1, 0, "msg").fingerprint


class TestBaseline:
    def _finding(self, msg="import of numpy outside the kernel allowlist", n=1):
        return [Finding("RA002", VIRTUAL, i + 1, 0, msg) for i in range(n)]

    def test_baselined_findings_do_not_fail(self):
        findings = self._finding(n=2)
        baseline = Baseline.from_findings(findings)
        delta = baseline.check(findings)
        assert delta.ok and len(delta.baselined) == 2 and not delta.new

    def test_count_beyond_baseline_fails(self):
        baseline = Baseline.from_findings(self._finding(n=1))
        delta = baseline.check(self._finding(n=2))
        assert not delta.ok and len(delta.new) == 1 and len(delta.baselined) == 1

    def test_ratchet_never_grows_a_count(self):
        baseline = Baseline.from_findings(self._finding(n=1))
        updated = baseline.ratchet(self._finding(n=3))
        # regression stays capped at the old ceiling
        assert list(updated.counts.values()) == [1]

    def test_ratchet_shrinks_paid_down_debt_and_drops_fixed(self):
        two = Baseline.from_findings(self._finding(n=2))
        updated = two.ratchet(self._finding(n=1))
        assert list(updated.counts.values()) == [1]
        assert two.ratchet([]).counts == {}

    def test_ratchet_absorbs_new_fingerprints_only_explicitly(self):
        baseline = Baseline()
        delta = baseline.check(self._finding(n=1))
        assert not delta.ok  # a plain check never absorbs
        updated = baseline.ratchet(self._finding(n=1))
        assert updated.check(self._finding(n=1)).ok

    def test_stale_entries_reported(self):
        baseline = Baseline.from_findings(self._finding(n=3))
        delta = baseline.check(self._finding(n=1))
        assert delta.ok and sum(delta.stale.values()) == 2

    def test_save_load_roundtrip(self, tmp_path):
        baseline = Baseline.from_findings(self._finding(n=2))
        path = tmp_path / "baseline.json"
        baseline.save(path)
        assert Baseline.load(path).counts == baseline.counts

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestDriver:
    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import numpy\n")
        (pkg / "good.py").write_text("x = 1\n")
        (pkg / "notes.txt").write_text("import numpy\n")
        findings = lint_paths([tmp_path / "src"], tmp_path)
        assert [f.path for f in by_rule(findings, "RA002")] == [
            "src/repro/core/bad.py"
        ]

    def test_iter_python_files_dedupes(self, tmp_path):
        f = tmp_path / "a.py"
        f.write_text("x = 1\n")
        files = list(iter_python_files([f, tmp_path]))
        assert len(files) == 1 and files[0].resolve() == f.resolve()

    def test_render_json_is_the_ci_contract(self):
        findings = [Finding("RA002", VIRTUAL, 1, 0, "import of numpy")]
        baseline = Baseline()
        payload = json.loads(render_json(baseline.check(findings), 5))
        assert payload["tool"] == "repro lint"
        assert payload["files_checked"] == 5
        assert payload["summary"]["new"] == 1
        assert payload["findings"][0]["baselined"] is False
        assert {r["code"] for r in payload["rules"]} >= {"RA001", "RA006"}

    def test_render_json_order_is_deterministic(self):
        """The JSON artifact is diffed across CI runs: findings must sort
        on (path, line, rule, col, message) no matter the input order."""
        findings = [
            Finding("RA002", "b.py", 3, 0, "zz"),
            Finding("RA001", "a.py", 9, 0, "mm"),
            Finding("RA002", "a.py", 9, 4, "mm"),
            Finding("RA002", "a.py", 9, 1, "nn"),
            Finding("RA002", "a.py", 9, 1, "mm"),
        ]
        import itertools

        baseline = Baseline()
        rendered = {
            render_json(baseline.check(list(perm)), 2)
            for perm in itertools.permutations(findings)
        }
        assert len(rendered) == 1, "output depends on input order"
        ordered = [
            (f["path"], f["line"], f["rule"], f["col"], f["message"])
            for f in json.loads(rendered.pop())["findings"]
        ]
        assert ordered == sorted(ordered)
