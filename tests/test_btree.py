"""Tests for the B+ tree: ordering, duplicates, deletion rebalancing,
cursors, and the surrounding() primitive the SSI probes rely on."""

import bisect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dstruct.btree import BPlusTree


def build(keys, order=4):
    tree = BPlusTree(order)
    for key in keys:
        tree.insert(key, f"v{key}")
    return tree


class TestBasics:
    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(3)

    def test_insert_and_iterate_sorted(self):
        tree = build([5, 1, 9, 3, 7])
        assert [k for k, __ in tree.items()] == [1, 3, 5, 7, 9]

    def test_len_and_bool(self):
        tree = BPlusTree()
        assert not tree
        tree.insert(1, "x")
        assert len(tree) == 1 and tree

    def test_get_all_duplicates_in_insertion_order(self):
        tree = BPlusTree(4)
        for tag in ("first", "second", "third"):
            tree.insert(7, tag)
        tree.insert(5, "other")
        assert tree.get_all(7) == ["first", "second", "third"]
        assert tree.get_all(99) == []

    def test_many_duplicates_split_correctly(self):
        tree = BPlusTree(4)
        for i in range(50):
            tree.insert(1, i)
        tree.check_invariants()
        assert len(tree.get_all(1)) == 50

    def test_composite_tuple_keys(self):
        tree = BPlusTree(4)
        for b in range(5):
            for c in range(5):
                tree.insert((b, c), (b, c))
        assert [v for __, v in tree.irange((2, 1), (2, 3))] == [(2, 1), (2, 2), (2, 3)]
        # A 1-tuple is a prefix: smaller than any (b, c) with the same b.
        cur = tree.cursor_ge((3,))
        assert cur.key == (3, 0)


class TestCursors:
    def test_cursor_ge_exact_and_between(self):
        tree = build([10, 20, 30])
        assert tree.cursor_ge(20).key == 20
        assert tree.cursor_ge(15).key == 20
        assert tree.cursor_ge(31).valid is False
        assert tree.cursor_ge(-5).key == 10

    def test_cursor_le(self):
        tree = build([10, 20, 30])
        assert tree.cursor_le(20).key == 20
        assert tree.cursor_le(25).key == 20
        assert tree.cursor_le(5).valid is False
        assert tree.cursor_le(99).key == 30

    def test_cursor_walks_both_directions(self):
        tree = build(list(range(20)), order=4)
        cur = tree.cursor_ge(10)
        seen = [cur.key]
        while cur.advance():
            seen.append(cur.key)
        assert seen == list(range(10, 20))
        cur = tree.cursor_le(9)
        seen = [cur.key]
        while cur.retreat():
            seen.append(cur.key)
        assert seen == list(range(9, -1, -1))

    def test_cursor_first_and_clone(self):
        tree = build([3, 1, 2])
        cur = tree.cursor_first()
        clone = cur.clone()
        cur.advance()
        assert clone.key == 1 and cur.key == 2

    def test_empty_tree_cursors(self):
        tree = BPlusTree()
        assert not tree.cursor_first().valid
        assert not tree.cursor_ge(0).valid
        assert not tree.cursor_le(0).valid

    def test_surrounding(self):
        tree = build([10, 20, 30])
        pred, succ = tree.surrounding(15)
        assert pred.key == 10 and succ.key == 20
        pred, succ = tree.surrounding(20)
        # Exact match: succ lands on it, pred is the adjacent entry before.
        assert pred.key == 10 and succ.key == 20
        pred, succ = tree.surrounding(5)
        assert not pred.valid and succ.key == 10
        pred, succ = tree.surrounding(35)
        assert pred.key == 30 and not succ.valid

    def test_surrounding_with_duplicates(self):
        tree = BPlusTree(4)
        for tag in ["a", "b", "c"]:
            tree.insert(20, tag)
        tree.insert(10, "x")
        tree.insert(30, "y")
        pred, succ = tree.surrounding(20)
        # succ = first entry >= 20; pred = the entry immediately before it
        # (adjacent pair, as in the paper's probe).
        assert succ.key == 20 and succ.value == "a"
        assert pred.key == 10 and pred.value == "x"


class TestRemoval:
    def test_remove_returns_value(self):
        tree = build([1, 2, 3])
        assert tree.remove(2) == "v2"
        assert [k for k, __ in tree.items()] == [1, 3]

    def test_remove_missing_raises(self):
        tree = build([1])
        with pytest.raises(KeyError):
            tree.remove(9)

    def test_remove_specific_value_among_duplicates(self):
        tree = BPlusTree(4)
        payloads = [object() for __ in range(10)]
        for p in payloads:
            tree.insert(5, p)
        tree.remove(5, payloads[3])
        remaining = tree.get_all(5)
        assert payloads[3] not in remaining
        assert len(remaining) == 9

    def test_remove_all_then_reuse(self):
        tree = build(list(range(100)), order=4)
        for key in range(100):
            tree.remove(key)
            tree.check_invariants()
        assert len(tree) == 0
        tree.insert(42, "back")
        assert tree.get_all(42) == ["back"]

    def test_counters(self):
        tree = build(list(range(50)))
        tree.reset_counters()
        tree.cursor_ge(10)
        assert tree.probe_count == 1
        cur = tree.cursor_first()
        while cur.advance():
            pass
        assert tree.scan_steps == 50


@given(
    st.lists(st.integers(0, 60), min_size=1, max_size=200),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_matches_sorted_oracle_under_mixed_updates(keys, data):
    tree = BPlusTree(4)
    oracle = []  # sorted list of keys
    for key in keys:
        tree.insert(key, key)
        bisect.insort(oracle, key)
    deletions = data.draw(st.integers(0, len(oracle)))
    for __ in range(deletions):
        idx = data.draw(st.integers(0, len(oracle) - 1))
        key = oracle.pop(idx)
        tree.remove(key)
    tree.check_invariants()
    assert [k for k, __ in tree.items()] == oracle
    for probe in data.draw(st.lists(st.integers(-5, 65), max_size=10)):
        ge = tree.cursor_ge(probe)
        le = tree.cursor_le(probe)
        succ_idx = bisect.bisect_left(oracle, probe)
        pred_idx = bisect.bisect_right(oracle, probe) - 1
        assert ge.valid == (succ_idx < len(oracle))
        if ge.valid:
            assert ge.key == oracle[succ_idx]
        assert le.valid == (pred_idx >= 0)
        if le.valid:
            assert le.key == oracle[pred_idx]


@given(st.integers(4, 64), st.lists(st.integers(0, 1000), min_size=1, max_size=300))
@settings(max_examples=30, deadline=None)
def test_invariants_across_orders(order, keys):
    tree = BPlusTree(order)
    for key in keys:
        tree.insert(key, key)
    tree.check_invariants()
    assert len(tree) == len(keys)
    assert [k for k, __ in tree.items()] == sorted(keys)


def test_irange_bounds():
    tree = build(list(range(0, 100, 10)))
    assert [k for k, __ in tree.irange(25, 55)] == [30, 40, 50]
    assert [k for k, __ in tree.irange(None, 15)] == [0, 10]
    assert [k for k, __ in tree.irange(95, None)] == []
    assert [k for k, __ in tree.irange()] == list(range(0, 100, 10))
