"""Extra algebraic property tests across the interval/box/step primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval, common_intersection
from repro.core.multidim import Box
from repro.histogram.step import StepFunction

from conftest import int_interval_strategy


@given(int_interval_strategy(), int_interval_strategy(), int_interval_strategy())
@settings(max_examples=100)
def test_intersection_associative(a, b, c):
    def inter(x, y):
        return None if x is None or y is None else x.intersect(y)

    assert inter(inter(a, b), c) == inter(a, inter(b, c))


@given(int_interval_strategy(), int_interval_strategy())
@settings(max_examples=100)
def test_intersection_commutative(a, b):
    assert a.intersect(b) == b.intersect(a)


@given(st.lists(int_interval_strategy(), min_size=1, max_size=15))
@settings(max_examples=80)
def test_common_intersection_order_independent(intervals):
    forward = common_intersection(intervals)
    backward = common_intersection(list(reversed(intervals)))
    assert forward == backward


def box_strategy():
    coord = st.integers(-15, 15)
    side = st.integers(0, 10)
    return st.builds(
        lambda x, y, w, h: Box((float(x), float(y)), (float(x + w), float(y + h))),
        coord, coord, side, side,
    )


@given(box_strategy(), box_strategy())
@settings(max_examples=100)
def test_box_intersection_commutative_and_contained(a, b):
    ab = a.intersect(b)
    assert ab == b.intersect(a)
    if ab is not None:
        assert a.contains(ab.center) and b.contains(ab.center)
        assert a.overlaps(b)
    else:
        assert not a.overlaps(b)


@given(
    st.lists(
        st.tuples(st.integers(-20, 20), st.integers(1, 8), st.integers(0, 9)),
        min_size=1,
        max_size=5,
    ),
    st.lists(
        st.tuples(st.integers(-20, 20), st.integers(1, 8), st.integers(0, 9)),
        min_size=1,
        max_size=5,
    ),
)
@settings(max_examples=80)
def test_step_sum_commutative(specs_a, specs_b):
    def build(specs):
        return [
            StepFunction((float(lo), float(lo + w)), (float(v),))
            for lo, w, v in specs
        ]

    fa, fb = build(specs_a), build(specs_b)
    left = StepFunction.sum_of(fa + fb)
    right = StepFunction.sum_of(fb + fa)
    assert left == right


@given(st.lists(st.tuples(st.integers(-20, 20), st.integers(1, 8)), min_size=1, max_size=6))
@settings(max_examples=80)
def test_simplified_preserves_values(specs):
    functions = [
        StepFunction((float(lo), float(lo + w)), (1.0,)) for lo, w in specs
    ]
    total = StepFunction.sum_of(functions)
    simple = total.simplified()
    lo, hi = total.support
    for i in range(20):
        x = lo + (hi - lo) * (i + 0.5) / 20
        assert total(x) == simple(x)
