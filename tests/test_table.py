"""Tests for the base relations R(A, B) and S(B, C)."""

import pytest

from repro.engine.table import RTuple, STuple, TableR, TableS


class TestTableS:
    def test_add_and_get(self):
        table = TableS()
        row = table.add(5.0, 7.0)
        assert table.get(row.sid) is row
        assert len(table) == 1

    def test_new_row_not_inserted(self):
        table = TableS()
        row = table.new_row(1.0, 2.0)
        assert table.get(row.sid) is None
        table.insert(row)
        assert table.get(row.sid) is row

    def test_duplicate_sid_rejected(self):
        table = TableS()
        row = table.add(1.0, 2.0)
        with pytest.raises(ValueError):
            table.insert(STuple(row.sid, 3.0, 4.0))

    def test_delete_removes_from_both_indexes(self):
        table = TableS()
        keep = table.add(5.0, 1.0)
        drop = table.add(5.0, 2.0)
        table.delete(drop)
        assert table.joining(5.0) == [keep]
        assert [v for __, v in table.by_bc.irange((5.0, 0.0), (5.0, 9.0))] == [keep]
        assert len(table) == 1

    def test_scan_by_b_sorted(self):
        table = TableS()
        for b in [5.0, 1.0, 3.0]:
            table.add(b, 0.0)
        assert [row.b for row in table.scan_by_b()] == [1.0, 3.0, 5.0]

    def test_joining_exact_matches_only(self):
        table = TableS()
        table.add(1.0, 0.0)
        hit = table.add(2.0, 0.0)
        assert table.joining(2.0) == [hit]
        assert table.joining(9.0) == []

    def test_composite_index_orders_by_c_within_b(self):
        table = TableS()
        rows = [table.add(7.0, c) for c in [3.0, 1.0, 2.0]]
        got = [v.c for __, v in table.by_bc.irange((7.0, 0.0), (7.0, 9.0))]
        assert got == [1.0, 2.0, 3.0]

    def test_iteration(self):
        table = TableS()
        rows = {table.add(float(i), 0.0).sid for i in range(5)}
        assert {row.sid for row in table} == rows


class TestTableR:
    def test_mirror_of_table_s(self):
        table = TableR()
        row = table.add(2.5, 7.5)  # (a, b)
        assert row.a == 2.5 and row.b == 7.5
        assert table.joining(7.5) == [row]
        table.delete(row)
        assert len(table) == 0

    def test_duplicate_rid_rejected(self):
        table = TableR()
        row = table.add(1.0, 2.0)
        with pytest.raises(ValueError):
            table.insert(RTuple(row.rid, 3.0, 4.0))

    def test_by_ba_composite(self):
        table = TableR()
        for a in [3.0, 1.0, 2.0]:
            table.add(a, 9.0)
        got = [v.a for __, v in table.by_ba.irange((9.0, 0.0), (9.0, 9.0))]
        assert got == [1.0, 2.0, 3.0]

    def test_scan_by_b(self):
        table = TableR()
        for b in [4.0, 2.0]:
            table.add(0.0, b)
        assert [r.b for r in table.scan_by_b()] == [2.0, 4.0]


def test_tuples_are_frozen():
    row = STuple(0, 1.0, 2.0)
    with pytest.raises(Exception):
        row.b = 9.0  # type: ignore[misc]
    row_r = RTuple(0, 1.0, 2.0)
    with pytest.raises(Exception):
        row_r.a = 9.0  # type: ignore[misc]
