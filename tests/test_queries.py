"""Tests for the continuous-query model (band joins, select-joins)."""

from repro.core.intervals import Interval
from repro.dstruct.rtree import Rect
from repro.engine.queries import (
    BandJoinQuery,
    SelectJoinQuery,
    band_interval,
    brute_force_band_join,
    brute_force_select_join,
    range_a_interval,
    range_c_interval,
)
from repro.engine.table import RTuple, STuple, TableS


class TestBandJoinQuery:
    def test_matches(self):
        query = BandJoinQuery(Interval(-1.0, 2.0))
        r = RTuple(0, a=0.0, b=10.0)
        assert query.matches(r, STuple(0, b=9.0, c=0.0))   # 9-10 = -1
        assert query.matches(r, STuple(1, b=12.0, c=0.0))  # 12-10 = 2
        assert not query.matches(r, STuple(2, b=13.0, c=0.0))

    def test_s_window(self):
        query = BandJoinQuery(Interval(-1.0, 2.0))
        assert query.s_window(RTuple(0, 0.0, 10.0)) == Interval(9.0, 12.0)

    def test_r_window_mirrors_s_window(self):
        query = BandJoinQuery(Interval(-1.0, 2.0))
        s = STuple(0, b=10.0, c=0.0)
        window = query.r_window(s)
        assert window == Interval(8.0, 11.0)
        # A tuple with r.b in the window matches.
        assert query.matches(RTuple(0, 0.0, 8.0), s)
        assert query.matches(RTuple(1, 0.0, 11.0), s)
        assert not query.matches(RTuple(2, 0.0, 11.5), s)

    def test_unique_qids(self):
        a = BandJoinQuery(Interval(0, 1))
        b = BandJoinQuery(Interval(0, 1))
        assert a.qid != b.qid

    def test_explicit_qid(self):
        assert BandJoinQuery(Interval(0, 1), qid=42).qid == 42

    def test_band_interval_accessor(self):
        query = BandJoinQuery(Interval(3, 4))
        assert band_interval(query) == Interval(3, 4)


class TestSelectJoinQuery:
    def test_matches_requires_equality_and_both_ranges(self):
        query = SelectJoinQuery(Interval(0, 10), Interval(20, 30))
        r = RTuple(0, a=5.0, b=7.0)
        assert query.matches(r, STuple(0, b=7.0, c=25.0))
        assert not query.matches(r, STuple(1, b=8.0, c=25.0))  # join key differs
        assert not query.matches(r, STuple(2, b=7.0, c=35.0))  # C selection fails
        assert not query.matches(RTuple(1, a=15.0, b=7.0), STuple(3, b=7.0, c=25.0))

    def test_rect_is_c_by_a(self):
        query = SelectJoinQuery(Interval(1, 2), Interval(3, 4))
        assert query.rect == Rect(3, 1, 4, 2)

    def test_interval_accessors(self):
        query = SelectJoinQuery(Interval(1, 2), Interval(3, 4))
        assert range_a_interval(query) == Interval(1, 2)
        assert range_c_interval(query) == Interval(3, 4)

    def test_repr_contains_ranges(self):
        query = SelectJoinQuery(Interval(1, 2), Interval(3, 4))
        assert "rangeA" in repr(query) and "rangeC" in repr(query)


class TestBruteForce:
    def test_band_join_oracle(self):
        table = TableS()
        near = table.add(10.0, 0.0)
        far = table.add(50.0, 0.0)
        query = BandJoinQuery(Interval(-1.0, 1.0))
        r = RTuple(0, 0.0, 10.5)
        results = brute_force_band_join([query], r, table)
        assert results == {query: [near]}

    def test_band_join_oracle_empty(self):
        table = TableS()
        table.add(50.0, 0.0)
        query = BandJoinQuery(Interval(-1.0, 1.0))
        assert brute_force_band_join([query], RTuple(0, 0.0, 10.0), table) == {}

    def test_select_join_oracle(self):
        table = TableS()
        hit = table.add(7.0, 25.0)
        table.add(7.0, 99.0)
        query = SelectJoinQuery(Interval(0, 10), Interval(20, 30))
        results = brute_force_select_join([query], RTuple(0, 5.0, 7.0), table)
        assert results == {query: [hit]}
