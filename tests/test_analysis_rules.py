"""Per-rule fixture tests: every project rule must (a) fire on a seeded
violation, (b) stay quiet on the idiomatic counterpart, (c) be suppressible
with an inline ``# repro: noqa[CODE]``, and (d) ride the baseline ratchet.
Fixtures lint in-memory sources under virtual paths, exercising exactly the
entry point (``lint_source``) production runs use."""

import pytest

from repro.analysis import Baseline, all_rules, lint_source

CORE = "src/repro/core/fake_module.py"
OBS = "src/repro/obs/fake_module.py"
RUNTIME = "src/repro/runtime/fake_worker.py"
KERNELS = "src/repro/fastpath/kernels.py"
HOTPATH = "src/repro/dstruct/treap.py"
ELSEWHERE = "src/repro/workload/fake_gen.py"

RA003_BAD = """\
import threading

class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self.depth = 0

    def push(self):
        with self._lock:
            self.depth += 1

    def peek(self):
        return self.depth
"""

RA003_GOOD = """\
import threading

class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self.depth = 0

    def push(self):
        with self._lock:
            self.depth += 1

    def peek(self):
        with self._lock:
            return self.depth
"""

RA004_BAD = """\
def drain(index):
    table = index.group_table()
    table.append(None)
"""

RA004_GOOD = """\
def drain(index):
    table = list(index.group_table())
    table.append(None)
"""

# (code, path, firing source, quiet source, substring expected in message)
CASES = [
    pytest.param(
        "RA001",
        CORE,
        "import time\nstamp = time.time()\n",
        "import random\nrng = random.Random(42)\nx = rng.random()\n",
        "non-deterministic call time.time()",
        id="RA001-wallclock",
    ),
    pytest.param(
        "RA001",
        CORE,
        "import random\nx = random.random()\n",
        "import random\nrng = random.Random(0)\nx = rng.random()\n",
        "shared global RNG",
        id="RA001-global-rng",
    ),
    pytest.param(
        "RA001",
        CORE,
        "import random\nrng = random.Random()\n",
        "import random\nrng = random.Random(7)\n",
        "without a seed",
        id="RA001-unseeded",
    ),
    pytest.param(
        "RA001",
        CORE,
        "for x in {1, 2, 3}:\n    pass\n",
        "for x in sorted({1, 2, 3}):\n    pass\n",
        "hash-order dependent",
        id="RA001-set-iteration",
    ),
    pytest.param(
        "RA002",
        CORE,
        "import numpy as np\n",
        "from repro.fastpath.kernels import get_numpy\nnp = get_numpy()\n",
        "outside the kernel allowlist",
        id="RA002-import",
    ),
    pytest.param(
        "RA002",
        CORE,
        "from numpy import ndarray\n",
        "from repro.fastpath.kernels import get_numpy\n",
        "outside the kernel allowlist",
        id="RA002-import-from",
    ),
    pytest.param(
        "RA002",
        ELSEWHERE,
        "from repro.fastpath.kernels import _np\n",
        "from repro.fastpath.kernels import get_numpy\n",
        "private kernel handle",
        id="RA002-private-handle",
    ),
    pytest.param(
        "RA003",
        RUNTIME,
        RA003_BAD,
        RA003_GOOD,
        "lock-guarded but read outside",
        id="RA003-unguarded-read",
    ),
    pytest.param(
        "RA004",
        ELSEWHERE,
        RA004_BAD,
        RA004_GOOD,
        "mutates a shared snapshot",
        id="RA004-append",
    ),
    pytest.param(
        "RA004",
        ELSEWHERE,
        "snap = tree.flat_snapshot()\nsnap[0] = None\n",
        "snap = list(tree.flat_snapshot())\nsnap[0] = None\n",
        "item assignment into a shared snapshot",
        id="RA004-setitem",
    ),
    pytest.param(
        "RA005",
        CORE,
        "def f(iv, x):\n    return x == iv.hi\n",
        "from repro.core.intervals import endpoints_equal\n"
        "def f(iv, x):\n    return endpoints_equal(x, iv.hi)\n",
        "float equality against .hi",
        id="RA005-endpoint-eq",
    ),
    pytest.param(
        "RA006",
        HOTPATH,
        "class Node:\n    def __init__(self):\n        self.key = 0\n",
        "class Node:\n    __slots__ = ('key',)\n"
        "    def __init__(self):\n        self.key = 0\n",
        "does not declare __slots__",
        id="RA006-missing-slots",
    ),
    pytest.param(
        "RA101",
        ELSEWHERE,
        "def f(xs=[]):\n    return xs\n",
        "def f(xs=None):\n    return xs or []\n",
        "mutable default argument",
        id="RA101-mutable-default",
    ),
    pytest.param(
        "RA102",
        ELSEWHERE,
        "try:\n    pass\nexcept:\n    pass\n",
        "try:\n    pass\nexcept Exception:\n    pass\n",
        "bare except",
        id="RA102-bare-except",
    ),
    pytest.param(
        "RA103",
        ELSEWHERE,
        "list = [1]\n",
        "items = [1]\n",
        "shadows builtin",
        id="RA103-shadowed-builtin",
    ),
]


def run(code, path, src):
    return lint_source(src, path, all_rules([code]))


CASES.append(
    pytest.param(
        "RA001",
        "src/repro/durability/checkpoint.py",
        "import random\nx = random.random()\n",
        # The metadata allowlist exempts exactly the wall-clock branch in
        # this one module (manifest created_at_unix); RNG still fires.
        "import time\nstamp = time.time()\n",
        "shared global RNG",
        id="RA001-durability-metadata-allowlist",
    )
)

CASES.append(
    pytest.param(
        "RA104",
        ELSEWHERE,
        # Nothing fires on this line, so the suppression is dead weight.
        "items = [1]  # repro: noqa[RA103]\n",
        # Here the pragma genuinely silences RA103 (shadowed builtin).
        "list = [1]  # repro: noqa[RA103]\n",
        "suppresses nothing",
        id="RA104-stale-noqa",
    )
)


@pytest.mark.parametrize("code,path,bad,good,fragment", CASES)
class TestEveryRule:
    def test_fires_on_violation(self, code, path, bad, good, fragment):
        findings = run(code, path, bad)
        assert findings, f"{code} did not fire on its fixture"
        assert all(f.rule == code for f in findings)
        assert fragment in findings[0].message

    def test_quiet_on_idiomatic_code(self, code, path, bad, good, fragment):
        assert run(code, path, good) == []

    def test_noqa_suppresses(self, code, path, bad, good, fragment):
        findings = run(code, path, bad)
        lines = bad.splitlines()
        for f in findings:
            lines[f.line - 1] += f"  # repro: noqa[{code}]"
        assert run(code, path, "\n".join(lines) + "\n") == []

    def test_baseline_ratchet_round_trip(self, code, path, bad, good, fragment):
        findings = run(code, path, bad)
        # absorbing the debt makes the same run pass ...
        baseline = Baseline().ratchet(findings)
        assert baseline.check(findings).ok
        # ... fixing it leaves stale entries a re-ratchet reclaims ...
        clean = baseline.check(run(code, path, good))
        assert clean.ok and clean.stale
        assert baseline.ratchet([]).counts == {}
        # ... and doubling the debt still fails against the old ceiling.
        doubled = findings + findings
        assert not baseline.check(doubled).ok


class TestScoping:
    """Rules must respect the project contract tables, not fire globally."""

    def test_ra001_only_on_the_replay_plane(self):
        src = "import time\nstamp = time.time()\n"
        assert run("RA001", CORE, src)
        assert run("RA001", "src/repro/operators/fake.py", src)
        assert run("RA001", "src/repro/runtime/replay.py", src)
        assert run("RA001", ELSEWHERE, src) == []
        assert run("RA001", "src/repro/runtime/pipeline.py", src) == []

    def test_ra001_covers_the_durability_package(self):
        src = "import time\nstamp = time.time()\n"
        assert run("RA001", "src/repro/durability/wal.py", src)
        assert run("RA001", "src/repro/durability/recovery.py", src)
        assert run("RA001", "src/repro/durability/manager.py", src)

    def test_ra001_metadata_allowlist_exempts_only_wall_clocks(self):
        checkpoint = "src/repro/durability/checkpoint.py"
        assert run("RA001", checkpoint, "import time\nx = time.time()\n") == []
        # Everything else RA001 polices still fires in the allowlisted module.
        assert run("RA001", checkpoint, "import random\nx = random.random()\n")
        assert run("RA001", checkpoint, "out = [x for x in {1, 2}]\n")

    def test_ra001_covers_the_obs_package(self):
        assert run("RA001", OBS, "import time\nx = time.time()\n")
        assert run("RA001", OBS, "import random\nx = random.random()\n")
        assert run("RA001", OBS, "out = [x for x in {1, 2}]\n")

    def test_ra001_obs_monotonic_clock_carveout(self):
        """obs/ may read monotonic clocks (span timing) but nothing else:
        wall clocks and datetime.now still fire, and the carve-out does
        not leak into core/."""
        for call in (
            "time.monotonic()",
            "time.monotonic_ns()",
            "time.perf_counter()",
            "time.perf_counter_ns()",
        ):
            src = f"import time\nx = {call}\n"
            assert run("RA001", OBS, src) == [], call
            # The same monotonic call is still banned on the replay plane.
            assert run("RA001", CORE, src), call
            assert run("RA001", "src/repro/durability/wal.py", src), call
        # Wall clocks stay banned in obs/ — only the monotonic subset is free.
        assert run("RA001", OBS, "import time\nx = time.time()\n")
        assert run("RA001", OBS, "import datetime\nx = datetime.datetime.now()\n")

    def test_ra001_covers_the_transport_package(self):
        """The shm data plane is on the replay-equivalence plane: RNG and
        set-iteration findings fire exactly as in core/."""
        transport = "src/repro/runtime/transport/fake_codec.py"
        assert run("RA001", transport, "import random\nx = random.random()\n")
        assert run("RA001", transport, "out = [x for x in {1, 2}]\n")

    def test_ra001_transport_monotonic_clock_carveout(self):
        """transport/ may read monotonic clocks (ring deadlines, grace
        windows) but wall clocks still fire, and the carve-out stays out
        of the rest of runtime/."""
        transport = "src/repro/runtime/transport/fake_ring.py"
        for call in ("time.monotonic()", "time.perf_counter()"):
            src = f"import time\nx = {call}\n"
            assert run("RA001", transport, src) == [], call
        assert run("RA001", transport, "import time\nx = time.time()\n")
        assert run(
            "RA001", transport, "import datetime\nx = datetime.datetime.now()\n"
        )

    def test_ra006_covers_transport_hotpath_modules(self):
        src = "class Plain:\n    pass\n"
        assert run("RA006", "src/repro/runtime/transport/shm.py", src)
        assert run("RA006", "src/repro/runtime/transport/frames.py", src)
        # worker.py is control-plane (one loop per process), not hot path.
        assert run("RA006", "src/repro/runtime/transport/worker.py", src) == []

    def test_ra002_allowlist_may_import_numpy(self):
        src = "import numpy as np\n"
        assert run("RA002", KERNELS, src) == []
        assert run("RA002", "src/repro/histogram/kmeans.py", src) == []
        assert run("RA002", CORE, src)

    def test_ra003_only_in_runtime(self):
        assert run("RA003", RUNTIME, RA003_BAD)
        assert run("RA003", CORE, RA003_BAD) == []

    def test_ra003_init_is_exempt(self):
        src = RA003_BAD.replace(
            "    def peek(self):\n        return self.depth\n", ""
        )
        assert run("RA003", RUNTIME, src) == []

    def test_ra005_intervals_module_is_allowlisted(self):
        src = "def f(iv, x):\n    return x == iv.lo\n"
        assert run("RA005", "src/repro/core/intervals.py", src) == []
        assert run("RA005", CORE, src)

    def test_ra006_only_on_hotpath_modules(self):
        src = "class Plain:\n    pass\n"
        assert run("RA006", HOTPATH, src)
        assert run("RA006", ELSEWHERE, src) == []

    def test_ra006_exemptions(self):
        for src in (
            "from typing import Protocol\nclass View(Protocol):\n    pass\n",
            "from dataclasses import dataclass\n"
            "@dataclass(slots=True)\nclass Row:\n    x: int = 0\n",
            "class BadThingError(Exception):\n    pass\n",
        ):
            assert run("RA006", HOTPATH, src) == [], src


class TestStaleNoqa:
    """RA104 audits the suppression mechanism itself."""

    def test_partially_stale_pragma_names_only_the_dead_codes(self):
        # RA103 fires (and is suppressed); RA001 never could here.
        src = "list = [1]  # repro: noqa[RA103,RA001]\n"
        findings = run("RA104", ELSEWHERE, src)
        assert len(findings) == 1
        assert "RA001" in findings[0].message
        assert "RA103" not in findings[0].message

    def test_stale_bare_noqa_is_flagged(self):
        findings = run("RA104", ELSEWHERE, "items = [1]  # repro: noqa\n")
        assert findings and "bare" in findings[0].message

    def test_useful_bare_noqa_is_quiet(self):
        assert run("RA104", ELSEWHERE, "list = [1]  # repro: noqa\n") == []

    def test_bare_noqa_cannot_silence_ra104(self):
        """A stale bare pragma must not suppress the finding reporting it —
        the auditor opts out of bare suppression (an explicit
        ``noqa[RA104]`` still works, exercised by the shared harness)."""
        findings = run("RA104", ELSEWHERE, "items = [1]  # repro: noqa\n")
        assert findings, "stale bare noqa suppressed its own report"

    def test_docstring_mention_is_not_a_pragma(self):
        src = '"""Docs mention  # repro: noqa[RA103]  syntax."""\nx = 1\n'
        assert run("RA104", ELSEWHERE, src) == []
