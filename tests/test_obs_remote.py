"""Unit tests for cross-process telemetry: the worker-side delta
collector and the parent-side merge (``repro.obs.remote``)."""

import math

from repro.obs.remote import TelemetryCollector, merge_telemetry, merged_metric_name
from repro.obs.tracing import RingTracer, SpanRecord
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.transport.frames import HistogramDelta, TelemetryPayload


class TestMergedMetricName:
    def test_unscoped_names_gain_shard_prefix(self):
        assert merged_metric_name("runtime/hotspot_promotions", 3) == (
            "shard3/runtime/hotspot_promotions"
        )
        assert merged_metric_name("worker/e2e/ingest_to_apply_us", 0) == (
            "shard0/worker/e2e/ingest_to_apply_us"
        )

    def test_shard_scoped_names_pass_through(self):
        assert merged_metric_name("obs/shard/3/band/headroom", 3) == (
            "obs/shard/3/band/headroom"
        )
        assert merged_metric_name("shard/2/batch_us", 2) == "shard/2/batch_us"

    def test_other_shards_number_still_prefixes(self):
        # A name scoped to a DIFFERENT shard is not this worker's scope.
        assert merged_metric_name("obs/shard/1/band/headroom", 2) == (
            "shard2/obs/shard/1/band/headroom"
        )


class TestTelemetryCollector:
    def build(self):
        registry = MetricsRegistry()
        tracer = RingTracer(capacity=64)
        return registry, tracer, TelemetryCollector(0, registry, tracer)

    def test_first_collect_ships_everything(self):
        registry, tracer, collector = self.build()
        registry.counter("runtime/x").inc(5)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        with tracer.span("worker.batch"):
            pass
        payload = collector.collect()
        assert payload.pid == tracer.pid
        assert payload.shard == 0
        assert payload.trace_id == tracer.trace_id
        assert payload.counters == {"runtime/x": 5}
        assert payload.gauges["g"] == 1.5
        assert payload.histograms["h"].count == 1
        assert [s.name for s in payload.spans] == ["worker.batch"]

    def test_second_collect_ships_only_the_delta(self):
        registry, tracer, collector = self.build()
        registry.counter("runtime/x").inc(5)
        registry.histogram("h").observe(3.0)
        collector.collect()
        # Nothing new: empty delta.
        payload = collector.collect()
        assert payload.counters == {}
        assert payload.histograms == {}
        assert payload.spans == []
        # New activity: only the increment travels.
        registry.counter("runtime/x").inc(2)
        registry.histogram("h").observe(100.0)
        payload = collector.collect()
        assert payload.counters == {"runtime/x": 2}
        assert payload.histograms["h"].count == 1
        assert payload.histograms["h"].total == 100.0

    def test_gauges_always_ship_as_absolutes(self):
        registry, _tracer, collector = self.build()
        registry.gauge("depth").set(7.0)
        assert collector.collect().gauges["depth"] == 7.0
        # Unchanged gauges still ship (they are point-in-time values).
        assert collector.collect().gauges["depth"] == 7.0


class TestMergeTelemetry:
    def test_merges_counters_gauges_histograms_and_spans(self):
        parent_registry = MetricsRegistry()
        parent_tracer = RingTracer(capacity=64)
        payload = TelemetryPayload(
            pid=4242,
            shard=1,
            trace_id=parent_tracer.trace_id,
            spans_dropped=3,
            spans=[
                SpanRecord(
                    name="worker.batch", ts_ns=10, dur_ns=5, tid=1,
                    pid=4242, trace_id=parent_tracer.trace_id,
                    span_id=9, parent_id=2,
                )
            ],
            counters={"runtime/hotspot_promotions": 4},
            gauges={"obs/shard/1/band/headroom": 55.0},
            histograms={
                "worker/e2e/ingest_to_apply_us": HistogramDelta(
                    count=2, total=12.0, min_value=4.0, max_value=8.0,
                    buckets=[(3, 2)],
                )
            },
        )
        merge_telemetry(parent_registry, parent_tracer, payload)
        snap = parent_registry.snapshot()
        assert snap["counters"]["shard1/runtime/hotspot_promotions"] == 4
        assert snap["gauges"]["obs/shard/1/band/headroom"] == 55.0
        assert snap["gauges"]["shard1/obs/spans_dropped"] == 3
        merged = snap["histograms"]["shard1/worker/e2e/ingest_to_apply_us"]
        assert merged["count"] == 2
        assert merged["sum"] == 12.0
        assert merged["min"] == 4.0 and merged["max"] == 8.0
        [span] = parent_tracer.snapshot()
        assert span.pid == 4242 and span.span_id == 9

    def test_merge_is_additive_across_payloads(self):
        registry = MetricsRegistry()
        delta = TelemetryPayload(
            pid=1, shard=0,
            counters={"runtime/x": 1},
            histograms={
                "h": HistogramDelta(
                    count=1, total=3.0, min_value=3.0, max_value=3.0,
                    buckets=[(2, 1)],
                )
            },
        )
        merge_telemetry(registry, None, delta)
        merge_telemetry(registry, None, delta)
        snap = registry.snapshot()
        assert snap["counters"]["shard0/runtime/x"] == 2
        assert snap["histograms"]["shard0/h"]["count"] == 2
        assert snap["histograms"]["shard0/h"]["sum"] == 6.0

    def test_none_tracer_drops_spans_but_merges_metrics(self):
        registry = MetricsRegistry()
        payload = TelemetryPayload(
            pid=1, shard=0,
            spans=[SpanRecord(name="s", ts_ns=0, dur_ns=1, tid=1, pid=1)],
            counters={"c": 1},
        )
        merge_telemetry(registry, None, payload)
        assert registry.snapshot()["counters"]["shard0/c"] == 1

    def test_collect_then_merge_roundtrip_preserves_quantile_shape(self):
        worker_registry = MetricsRegistry()
        worker_tracer = RingTracer(capacity=64)
        collector = TelemetryCollector(2, worker_registry, worker_tracer)
        for value in (10.0, 20.0, 500.0, 9_000.0):
            worker_registry.histogram("worker/e2e/ingest_to_apply_us").observe(value)
        parent = MetricsRegistry()
        merge_telemetry(parent, None, collector.collect())
        merged = parent.snapshot()["histograms"][
            "shard2/worker/e2e/ingest_to_apply_us"
        ]
        original = worker_registry.snapshot()["histograms"][
            "worker/e2e/ingest_to_apply_us"
        ]
        assert merged["count"] == original["count"]
        assert math.isclose(merged["sum"], original["sum"])
        assert merged["buckets"] == original["buckets"]
        assert merged["min"] == original["min"]
        assert merged["max"] == original["max"]
