"""Durability subsystem: WAL framing, checkpoints, crash recovery.

The acceptance property lives in ``TestKillAndRecover``: an interrupted
run whose WAL is truncated at an arbitrary byte offset (including
mid-record) recovers and then produces deltas byte-identical to an
uninterrupted reference run over the same deterministic stream.
"""

import shutil

import pytest

from repro.core.intervals import Interval
from repro.durability import (
    CodecError,
    DurabilityManager,
    RecoveryError,
    Unsubscribe,
    WalCorruptionError,
    WriteAheadLog,
    decode_record,
    decode_stream,
    encode_event,
    load_latest_checkpoint,
    read_wal,
    recover_into,
    recover_system,
    write_checkpoint,
)
from repro.durability.wal import list_segments, segment_path
from repro.engine.events import DataEvent, EventKind, QueryEvent
from repro.engine.queries import BandJoinQuery, SelectJoinQuery
from repro.engine.table import RTuple, STuple
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.pipeline import EventPipeline
from repro.runtime.replay import (
    StreamProfile,
    generate_mixed_stream,
    normalize_deltas,
)
from repro.runtime.sharding import ShardedContinuousQuerySystem


def r_insert(rid, a, b):
    return DataEvent(EventKind.INSERT, "R", RTuple(rid, a, b))


def s_insert(sid, b, c):
    return DataEvent(EventKind.INSERT, "S", STuple(sid, b, c))


# -- codec --------------------------------------------------------------------


class TestCodec:
    @pytest.mark.parametrize(
        "event",
        [
            r_insert(7, 1.5, -2.25),
            DataEvent(EventKind.DELETE, "R", RTuple(7, 1.5, -2.25)),
            s_insert(9, 3.0, 4.5),
            DataEvent(EventKind.DELETE, "S", STuple(9, 3.0, 4.5)),
            QueryEvent(EventKind.INSERT, BandJoinQuery(Interval(-1.0, 2.0), qid=11)),
            QueryEvent(
                EventKind.INSERT,
                SelectJoinQuery(Interval(0.0, 5.0), Interval(2.0, 9.0), qid=12),
            ),
        ],
    )
    def test_round_trip(self, event):
        decoded = decode_record(encode_event(event))
        if isinstance(event, DataEvent):
            assert decoded == event
        else:
            assert isinstance(decoded, QueryEvent)
            assert decoded.query.qid == event.query.qid
            assert type(decoded.query) is type(event.query)

    def test_unsubscribe_decodes_to_qid_marker(self):
        event = QueryEvent(EventKind.DELETE, BandJoinQuery(Interval(0, 1), qid=3))
        assert decode_record(encode_event(event)) == Unsubscribe(3)

    def test_select_query_ranges_survive(self):
        query = SelectJoinQuery(Interval(0.25, 5.5), Interval(2.125, 9.75), qid=4)
        decoded = decode_record(encode_event(QueryEvent(EventKind.INSERT, query)))
        assert decoded.query.range_a.lo == 0.25 and decoded.query.range_a.hi == 5.5
        assert decoded.query.range_c.lo == 2.125 and decoded.query.range_c.hi == 9.75

    def test_rejects_unknown_tag(self):
        with pytest.raises(CodecError):
            decode_record(bytes([200]) + b"\x00" * 24)

    def test_rejects_wrong_length(self):
        payload = encode_event(r_insert(1, 0.0, 0.0))
        with pytest.raises(CodecError):
            decode_record(payload[:-1])

    def test_rejects_empty_payload(self):
        with pytest.raises(CodecError):
            decode_record(b"")

    def test_rejects_unsupported_event(self):
        with pytest.raises(CodecError):
            encode_event(object())

    def test_stream_round_trip(self):
        events = [r_insert(1, 1.0, 2.0), s_insert(2, 3.0, 4.0)]
        blob = b"".join(encode_event(e) for e in events)
        assert decode_stream(blob) == events

    def test_stream_rejects_trailing_bytes(self):
        blob = encode_event(r_insert(1, 1.0, 2.0)) + b"\x01"
        with pytest.raises(CodecError):
            decode_stream(blob)


# -- WAL ----------------------------------------------------------------------


def append_events(wal, events):
    for event in events:
        wal.append(encode_event(event))


class TestWal:
    def test_append_read_round_trip(self, tmp_path):
        events = [r_insert(i, float(i), float(2 * i)) for i in range(10)]
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            append_events(wal, events)
        result = read_wal(tmp_path)
        assert not result.torn_tail
        assert [rec.seq for rec in result.records] == list(range(10))
        assert [decode_record(rec.payload) for rec in result.records] == events
        assert result.next_seq == 10

    def test_rotation_splits_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never", segment_bytes=128) as wal:
            append_events(wal, [r_insert(i, 0.0, 0.0) for i in range(20)])
        segments = list_segments(tmp_path)
        assert len(segments) > 1
        result = read_wal(tmp_path)
        assert [rec.seq for rec in result.records] == list(range(20))

    def test_reopen_resumes_at_start_seq(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            append_events(wal, [r_insert(i, 0.0, 0.0) for i in range(5)])
        with WriteAheadLog(tmp_path, fsync="never", start_seq=5) as wal:
            assert wal.append(encode_event(r_insert(5, 0.0, 0.0))) == 5
        assert [rec.seq for rec in read_wal(tmp_path).records] == list(range(6))

    def test_torn_final_record_is_tolerated(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            append_events(wal, [r_insert(i, 0.0, 0.0) for i in range(4)])
        segment = list_segments(tmp_path)[-1]
        with open(segment, "r+b") as handle:
            handle.truncate(segment.stat().st_size - 7)  # mid-record cut
        result = read_wal(tmp_path)
        assert result.torn_tail
        assert [rec.seq for rec in result.records] == [0, 1, 2]
        assert result.next_seq == 3

    def test_truncated_header_of_last_segment_is_tolerated(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            append_events(wal, [r_insert(0, 0.0, 0.0)])
        with WriteAheadLog(tmp_path, fsync="never", start_seq=1) as wal:
            append_events(wal, [r_insert(1, 0.0, 0.0)])
        last = list_segments(tmp_path)[-1]
        with open(last, "r+b") as handle:
            handle.truncate(3)  # crash during the header write
        result = read_wal(tmp_path)
        assert result.torn_tail
        assert [rec.seq for rec in result.records] == [0]

    def test_crc_mismatch_mid_segment_raises(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            append_events(wal, [r_insert(i, 0.0, 0.0) for i in range(4)])
        segment = list_segments(tmp_path)[-1]
        data = bytearray(segment.read_bytes())
        # Flip a payload byte of an interior (complete) record: damage that
        # truncation cannot produce must never be skipped silently.
        data[16 + 16 + 4] ^= 0xFF
        segment.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError, match="CRC mismatch"):
            read_wal(tmp_path)

    def test_short_non_final_segment_raises(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            append_events(wal, [r_insert(0, 0.0, 0.0)])
        with WriteAheadLog(tmp_path, fsync="never", start_seq=1) as wal:
            append_events(wal, [r_insert(1, 0.0, 0.0)])
        first = list_segments(tmp_path)[0]
        with open(first, "r+b") as handle:
            handle.truncate(first.stat().st_size - 3)
        with pytest.raises(WalCorruptionError, match="non-final"):
            read_wal(tmp_path)

    def test_bad_magic_raises(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            append_events(wal, [r_insert(0, 0.0, 0.0)])
        segment = list_segments(tmp_path)[0]
        data = bytearray(segment.read_bytes())
        data[:4] = b"NOPE"
        segment.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError, match="bad magic"):
            read_wal(tmp_path)

    def test_empty_segment_is_tolerated(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            append_events(wal, [r_insert(0, 0.0, 0.0)])
        segment_path(tmp_path, 1).touch()  # crash between create and write
        result = read_wal(tmp_path)
        assert [rec.seq for rec in result.records] == [0]
        assert not result.torn_tail

    def test_empty_directory_reads_empty(self, tmp_path):
        result = read_wal(tmp_path)
        assert result.records == [] and result.next_seq == 0

    def test_prune_removes_covered_segments_only(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never", segment_bytes=128) as wal:
            append_events(wal, [r_insert(i, 0.0, 0.0) for i in range(20)])
            before = len(list_segments(tmp_path))
            removed = wal.prune(upto_seq=wal.next_seq)
            assert removed and len(list_segments(tmp_path)) < before
            # The active segment survives, and what remains still reads.
            assert wal.active_segment in list_segments(tmp_path)
        result = read_wal(tmp_path)
        assert result.records[-1].seq == 19

    def test_fsync_always_counts_per_append(self, tmp_path):
        metrics = MetricsRegistry()
        with WriteAheadLog(tmp_path, fsync="always", metrics=metrics) as wal:
            append_events(wal, [r_insert(i, 0.0, 0.0) for i in range(3)])
        assert metrics.counter("durability/wal_fsync_total").value >= 3

    def test_fsync_batch_counts_per_sync(self, tmp_path):
        metrics = MetricsRegistry()
        with WriteAheadLog(tmp_path, fsync="batch", metrics=metrics) as wal:
            append_events(wal, [r_insert(i, 0.0, 0.0) for i in range(8)])
            wal.sync()
            count = metrics.counter("durability/wal_fsync_total").value
            assert count == 1
            wal.sync()  # not dirty: no extra fsync
            assert metrics.counter("durability/wal_fsync_total").value == count

    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path, fsync="sometimes")


# -- checkpoints --------------------------------------------------------------


def snapshot_payloads():
    shard0 = b"".join(
        [
            encode_event(r_insert(1, 1.0, 2.0)),
            encode_event(
                QueryEvent(EventKind.INSERT, BandJoinQuery(Interval(0, 1), qid=5))
            ),
        ]
    )
    shard1 = encode_event(s_insert(2, 3.0, 4.0))
    return [shard0, shard1]


class TestCheckpoint:
    def test_write_load_round_trip(self, tmp_path):
        write_checkpoint(
            tmp_path,
            next_seq=42,
            shard_payloads=snapshot_payloads(),
            config={"num_shards": 2},
        )
        loaded, skipped = load_latest_checkpoint(tmp_path)
        assert skipped == []
        assert loaded.next_seq == 42
        assert loaded.config["num_shards"] == 2
        assert len(loaded.rows) == 2  # rows split out from subscriptions
        assert len(loaded.subscriptions) == 1

    def test_newest_valid_checkpoint_wins(self, tmp_path):
        write_checkpoint(
            tmp_path, next_seq=10, shard_payloads=snapshot_payloads(), config={}
        )
        write_checkpoint(
            tmp_path, next_seq=20, shard_payloads=snapshot_payloads(), config={}
        )
        loaded, __ = load_latest_checkpoint(tmp_path)
        assert loaded.next_seq == 20

    def test_missing_snapshot_file_falls_back(self, tmp_path):
        write_checkpoint(
            tmp_path, next_seq=10, shard_payloads=snapshot_payloads(), config={}
        )
        newest = write_checkpoint(
            tmp_path, next_seq=20, shard_payloads=snapshot_payloads(), config={}
        )
        (newest / "shard-1.snap").unlink()  # manifest now points at nothing
        loaded, skipped = load_latest_checkpoint(tmp_path)
        assert loaded.next_seq == 10
        assert len(skipped) == 1 and "missing snapshot" in skipped[0]

    def test_crc_damage_falls_back(self, tmp_path):
        write_checkpoint(
            tmp_path, next_seq=10, shard_payloads=snapshot_payloads(), config={}
        )
        newest = write_checkpoint(
            tmp_path, next_seq=20, shard_payloads=snapshot_payloads(), config={}
        )
        snap = newest / "shard-0.snap"
        data = bytearray(snap.read_bytes())
        data[5] ^= 0xFF
        snap.write_bytes(bytes(data))
        loaded, skipped = load_latest_checkpoint(tmp_path)
        assert loaded.next_seq == 10
        assert any("CRC mismatch" in note for note in skipped)

    def test_no_checkpoint_returns_none(self, tmp_path):
        loaded, skipped = load_latest_checkpoint(tmp_path)
        assert loaded is None and skipped == []


# -- recovery -----------------------------------------------------------------


def run_ops(system):
    """A small scripted history; returns the expected final counts."""
    band = BandJoinQuery(Interval(-2.0, 2.0), qid=100)
    select = SelectJoinQuery(Interval(0.0, 50.0), Interval(0.0, 50.0), qid=101)
    system.subscribe(band)
    system.subscribe(select)
    system.insert_r_row(RTuple(1, 10.0, 5.0))
    system.insert_s_row(STuple(1, 6.0, 20.0))
    system.insert_s_row(STuple(2, 30.0, 40.0))
    system.delete_s(STuple(2, 30.0, 40.0))
    system.unsubscribe(band)
    return {"r": 1, "s": 1, "subs": 1}


class TestRecovery:
    def test_wal_only_recovery(self, tmp_path):
        manager = DurabilityManager(tmp_path, fsync="never")
        system = ShardedContinuousQuerySystem(num_shards=2, durability=manager)
        manager.attach(system)
        want = run_ops(system)
        manager.close()

        recovered, report = recover_system(tmp_path, num_shards=2)
        assert report.checkpoint_seq is None
        assert report.replayed_events == 7
        assert report.next_seq == 7
        assert len(recovered.shards[0].table_r) == want["r"]
        assert len(recovered.shards[0].table_s_band) == want["s"]
        assert recovered.subscription_count == want["subs"]

    def test_checkpoint_plus_tail_with_seq_dedupe(self, tmp_path):
        manager = DurabilityManager(tmp_path, fsync="never")
        system = ShardedContinuousQuerySystem(num_shards=2, durability=manager)
        manager.attach(system)
        run_ops(system)
        manager.checkpoint(system)  # covers seqs [0, 7)
        system.insert_r_row(RTuple(2, 11.0, 6.0))  # seq 7, in the WAL tail
        manager.close()

        # The active segment still holds seqs 0..7, so it overlaps the
        # checkpoint: records below next_seq must be deduped by sequence
        # number, not re-applied.
        recovered, report = recover_system(tmp_path)
        assert report.checkpoint_seq == 7
        assert report.deduped_records == 7
        assert report.replayed_events == 1
        assert report.next_seq == 8
        # The deduped insert did not double-apply row rid=1.
        assert len(recovered.shards[0].table_r) == 2
        assert recovered.subscription_count == 1

    def test_recovered_config_comes_from_manifest(self, tmp_path):
        manager = DurabilityManager(tmp_path, fsync="never")
        system = ShardedContinuousQuerySystem(
            num_shards=3, alpha=0.05, epsilon=2.0, durability=manager
        )
        manager.attach(system)
        run_ops(system)
        manager.checkpoint(system)
        manager.close()

        recovered, __ = recover_system(tmp_path, num_shards=7)  # kwarg ignored
        assert len(recovered.shards) == 3
        assert recovered.alpha == 0.05
        assert recovered.epsilon == 2.0

    def test_unsub_of_unknown_query_raises(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="never") as wal:
            wal.append(
                encode_event(
                    QueryEvent(
                        EventKind.DELETE, BandJoinQuery(Interval(0, 1), qid=77)
                    )
                )
            )
        with pytest.raises(RecoveryError, match="unknown query id 77"):
            recover_into(ShardedContinuousQuerySystem(num_shards=2), tmp_path)

    def test_attach_recovers_then_resumes_logging(self, tmp_path):
        manager = DurabilityManager(tmp_path, fsync="never")
        system = ShardedContinuousQuerySystem(num_shards=2, durability=manager)
        manager.attach(system)
        run_ops(system)
        manager.close()

        metrics = MetricsRegistry()
        manager2 = DurabilityManager(tmp_path, fsync="never", metrics=metrics)
        system2 = ShardedContinuousQuerySystem(num_shards=2, durability=manager2)
        report = manager2.attach(system2)
        assert report.next_seq == 7
        assert metrics.counter("durability/recovered_events_total").value == 7
        # Replay was not re-logged; fresh activity continues the sequence.
        assert manager2.next_seq == 7
        system2.insert_r_row(RTuple(9, 1.0, 2.0))
        assert manager2.next_seq == 8
        manager2.close()


# -- kill-and-recover acceptance ----------------------------------------------


PROFILE = StreamProfile(
    n_events=10_000,
    n_initial_queries=120,
    band_fraction=0.3,
    delete_fraction=0.25,
    churn=0.0,
    seed=20_060_912,
)


def normalized_outputs(results):
    return [
        (event.kind.name, event.relation, event.row, normalize_deltas(deltas))
        for __, event, deltas in results
    ]


def durable_pipeline(directory, metrics=None):
    manager = DurabilityManager(
        directory, fsync="never", checkpoint_every=2_500, metrics=metrics
    )
    pipeline = EventPipeline(
        num_shards=2,
        alpha=0.05,
        batch_size=64,
        mode="inline",
        metrics=metrics,
        durability=manager,
    )
    return manager, pipeline


class TestKillAndRecover:
    @pytest.mark.parametrize("cut", ["mid-record", "random"])
    def test_recovery_matches_uninterrupted_run(self, tmp_path, cut):
        stream = generate_mixed_stream(PROFILE)
        crash_at = int(len(stream) * 0.63)

        reference = EventPipeline(
            num_shards=2, alpha=0.05, batch_size=64, mode="inline"
        )
        want = normalized_outputs(reference.run(stream))
        reference.close()

        wal_dir = tmp_path / "wal"
        manager, pipeline = durable_pipeline(wal_dir)
        manager.attach(pipeline)
        for event in stream[:crash_at]:
            pipeline.submit(event)
        pipeline.drain()
        manager.wal.flush()  # what a crashed process leaves at best

        # Simulate the kill: copy the directory as the crash froze it and
        # truncate the newest WAL segment at an arbitrary byte offset.
        crash_dir = tmp_path / "crash"
        shutil.copytree(wal_dir, crash_dir)
        pipeline.close()
        segment = list_segments(crash_dir)[-1]
        size = segment.stat().st_size
        if cut == "mid-record":
            offset = max(size - 13, 0)  # inside the final frame
        else:
            import random

            offset = random.Random(PROFILE.seed).randrange(size + 1)
        with open(segment, "r+b") as handle:
            handle.truncate(offset)

        manager2, pipeline2 = durable_pipeline(crash_dir)
        report = manager2.attach(pipeline2)
        assert report.next_seq <= crash_at
        got = normalized_outputs(pipeline2.run(stream[report.next_seq :]))
        pipeline2.close()

        # Byte-identity of everything after the recovery point: same rows,
        # same kinds, same normalized deltas, element by element.
        assert got == want[len(want) - len(got) :]

    def test_interrupted_run_loses_nothing_before_the_tail(self, tmp_path):
        """The WAL holds every submitted event up to the torn tail."""
        stream = generate_mixed_stream(PROFILE)
        crash_at = 4_000
        manager, pipeline = durable_pipeline(tmp_path / "wal")
        manager.attach(pipeline)
        for event in stream[:crash_at]:
            pipeline.submit(event)
        pipeline.drain()
        manager.sync()
        pipeline.close()
        result = read_wal(tmp_path / "wal")
        loaded, __ = load_latest_checkpoint(tmp_path / "wal")
        assert result.next_seq == crash_at
        assert loaded is not None and loaded.next_seq <= crash_at


# -- pipeline integration -----------------------------------------------------


class TestPipelineDurability:
    def test_requires_block_backpressure(self, tmp_path):
        manager = DurabilityManager(tmp_path, fsync="never")
        with pytest.raises(ValueError, match="block"):
            EventPipeline(backpressure="drop-oldest", durability=manager)

    def test_rejects_process_mode(self, tmp_path):
        manager = DurabilityManager(tmp_path, fsync="never")
        with pytest.raises(ValueError, match="process"):
            EventPipeline(mode="process", durability=manager)

    def test_metrics_are_registered(self, tmp_path):
        metrics = MetricsRegistry()
        manager, pipeline = durable_pipeline(tmp_path, metrics=metrics)
        manager.attach(pipeline)
        stream = generate_mixed_stream(
            StreamProfile(n_events=600, n_initial_queries=30, seed=2)
        )
        pipeline.run(stream)
        manager.checkpoint(pipeline)
        pipeline.close()
        snapshot = metrics.snapshot()
        assert snapshot["histograms"]["durability/wal_append_seconds"]["count"] > 0
        assert snapshot["histograms"]["durability/checkpoint_duration_seconds"]["count"] > 0
        assert metrics.counter("durability/checkpoints_total").value >= 1

    def test_fsync_batch_syncs_once_per_flush(self, tmp_path):
        metrics = MetricsRegistry()
        manager = DurabilityManager(tmp_path, fsync="batch", metrics=metrics)
        pipeline = EventPipeline(
            num_shards=2, batch_size=8, mode="inline", durability=manager
        )
        manager.attach(pipeline)
        for i in range(32):
            pipeline.submit(r_insert(i, float(i), float(i)))
        pipeline.drain()
        fsyncs = metrics.counter("durability/wal_fsync_total").value
        assert 1 <= fsyncs <= 32 // 8 + 1
        pipeline.close()

    def test_periodic_checkpoint_prunes_wal(self, tmp_path):
        manager = DurabilityManager(
            tmp_path, fsync="never", checkpoint_every=50, segment_bytes=512
        )
        pipeline = EventPipeline(
            num_shards=2, batch_size=16, mode="inline", durability=manager
        )
        manager.attach(pipeline)
        stream = generate_mixed_stream(
            StreamProfile(n_events=400, n_initial_queries=20, seed=5)
        )
        pipeline.run(stream)
        pipeline.close()
        loaded, __ = load_latest_checkpoint(tmp_path)
        assert loaded is not None and loaded.next_seq > 0
        # Retention: every surviving segment still matters for recovery.
        recovered, report = recover_system(tmp_path)
        assert report.next_seq == len(stream)
        assert recovered.subscription_count == pipeline.subscription_count
