"""Tests for metric exposition: bucket math, interpolated quantiles,
Prometheus rendering, JSONL snapshot streams, and the HTTP endpoint."""

import json
import math
import urllib.request

import pytest

from repro.obs.export import (
    MetricsServer,
    SnapshotWriter,
    bucket_bounds,
    estimate_quantile,
    estimate_quantiles,
    latest_snapshot,
    read_snapshots,
    metric_help,
    render_prometheus,
    render_snapshot,
    sanitize_metric_name,
)
from repro.obs.tracing import RingTracer
from repro.runtime.metrics import N_HISTOGRAM_BUCKETS, Histogram, MetricsRegistry


class TestBucketBounds:
    def test_bucket_zero_is_unit_interval(self):
        assert bucket_bounds(0) == (0.0, 1.0)

    def test_power_of_two_buckets(self):
        assert bucket_bounds(1) == (1.0, 2.0)
        assert bucket_bounds(5) == (16.0, 32.0)

    def test_last_bucket_saturates(self):
        lo, hi = bucket_bounds(N_HISTOGRAM_BUCKETS - 1)
        assert lo == 2.0 ** (N_HISTOGRAM_BUCKETS - 2)
        assert math.isinf(hi)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            bucket_bounds(-1)
        with pytest.raises(ValueError):
            bucket_bounds(N_HISTOGRAM_BUCKETS)


class TestEstimateQuantile:
    def test_empty_is_zero(self):
        assert estimate_quantile([], 0, 0.5) == 0.0

    def test_quantile_domain_checked(self):
        with pytest.raises(ValueError):
            estimate_quantile([[0, 1]], 1, 1.5)

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(ValueError):
            estimate_quantile([[0, 1]], 10, 0.99)

    def test_single_bucket_interpolates_inside(self):
        # 4 observations in bucket 3 = [4, 8).
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            estimate = estimate_quantile([[3, 4]], 4, q)
            assert 4.0 <= estimate < 8.0

    def test_rank_walks_buckets(self):
        # 5 in [0,1), 5 in [2,4): the median is in the first bucket, p99
        # in the second.
        buckets = [[0, 5], [2, 5]]
        assert 0.0 <= estimate_quantile(buckets, 10, 0.5) < 1.0
        assert 2.0 <= estimate_quantile(buckets, 10, 0.99) < 4.0

    def test_saturated_top_bucket_returns_lower_bound(self):
        top = N_HISTOGRAM_BUCKETS - 1
        estimate = estimate_quantile([[top, 3]], 3, 0.99)
        assert estimate == bucket_bounds(top)[0]

    def test_empty_is_zero_for_every_quantile(self):
        for q in (0.0, 0.5, 1.0):
            assert estimate_quantile([], 0, q) == 0.0
            assert estimate_quantile([[3, 0]], 0, q) == 0.0

    def test_all_mass_in_one_bucket_stays_inside_it(self):
        # Every observation in bucket 5 = [16, 32): any quantile must land
        # in that bucket, q=0 at its lower bound, q=1 strictly below its
        # upper bound.
        lo, hi = bucket_bounds(5)
        for q in (0.0, 0.01, 0.5, 0.99, 1.0):
            estimate = estimate_quantile([[5, 1000]], 1000, q)
            assert lo <= estimate < hi
        # ...and the estimates are monotone in q.
        low = estimate_quantile([[5, 1000]], 1000, 0.0)
        high = estimate_quantile([[5, 1000]], 1000, 1.0)
        assert low <= high

    def test_q_zero_and_one_clamp_to_data_range(self):
        # Mass in buckets 1=[1,2) and 3=[4,8): q=0 clamps into the lowest
        # occupied bucket, q=1 stays below the highest occupied bucket's
        # upper bound (never bleeds into empty buckets).
        buckets = [[1, 10], [3, 10]]
        bottom = estimate_quantile(buckets, 20, 0.0)
        assert 1.0 <= bottom < 2.0
        top = estimate_quantile(buckets, 20, 1.0)
        assert 4.0 <= top < 8.0

    def test_from_live_histogram_snapshot(self):
        h = Histogram()
        for value in [1.0, 2.0, 3.0, 100.0]:
            h.observe(value)
        quantiles = estimate_quantiles(h.snapshot())
        assert set(quantiles) == {"p50", "p95", "p99"}
        # p99's rank-4 value 100.0 lives in bucket [64, 128).
        assert 64.0 <= quantiles["p99"] < 128.0
        # Never above the histogram's own conservative upper-bound quantile.
        assert quantiles["p99"] <= h.quantile(0.99)


class TestPrometheusRendering:
    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({"counters": {}, "gauges": {}, "histograms": {}}) == ""

    def test_sanitize(self):
        assert sanitize_metric_name("shard/0/batch_us") == "repro_shard_0_batch_us"
        assert sanitize_metric_name("x", prefix="") == "x"
        assert sanitize_metric_name("9lives", prefix="").startswith("_")

    def test_counter_gauge_histogram_lines(self):
        registry = MetricsRegistry()
        registry.counter("pipeline/events").inc(3)
        registry.gauge("queue").set(2.0)
        registry.histogram("lat").observe(5.0)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_pipeline_events_total counter" in text
        assert "repro_pipeline_events_total 3" in text
        assert "repro_queue 2" in text
        assert '# TYPE repro_lat summary' in text
        assert 'repro_lat{quantile="0.5"}' in text
        assert "repro_lat_sum 5" in text
        assert "repro_lat_count 1" in text
        assert text.endswith("\n")

    def test_total_suffix_not_doubled(self):
        registry = MetricsRegistry()
        registry.counter("durability/wal_fsync_total").inc()
        text = render_prometheus(registry.snapshot())
        assert "repro_durability_wal_fsync_total 1" in text
        assert "_total_total" not in text

    def test_every_type_line_is_preceded_by_help(self):
        registry = MetricsRegistry()
        registry.counter("pipeline/events_applied").inc(3)
        registry.counter("some/novel_counter").inc()
        registry.gauge("runtime/queue_depth").set(2.0)
        registry.histogram("pipeline/e2e_us").observe(5.0)
        lines = render_prometheus(registry.snapshot()).splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# TYPE "):
                _, _, metric, _kind = line.split(" ")
                assert lines[i - 1].startswith(f"# HELP {metric} "), lines[i - 1]
                # HELP text is a sentence, not an empty stub.
                help_text = lines[i - 1].split(" ", 3)[3]
                assert help_text.strip().endswith(".")

    def test_known_names_get_specific_help(self):
        assert "latency" in metric_help("pipeline/e2e_us").lower()
        assert "promoted" in metric_help("obs/shard/0/band/promotions").lower()
        # Unknown names fall back to a generic but well-formed line.
        fallback = metric_help("totally/unknown_metric")
        assert "totally/unknown_metric" in fallback
        assert fallback.endswith(".")

    def test_help_lines_render_once_per_metric(self):
        registry = MetricsRegistry()
        registry.counter("a/events").inc()
        registry.counter("b/events").inc()
        text = render_prometheus(registry.snapshot())
        assert text.count("# HELP repro_a_events_total ") == 1
        assert text.count("# HELP repro_b_events_total ") == 1


class TestRenderSnapshot:
    def test_empty(self):
        assert render_snapshot({}) == "(no metrics recorded)"

    def test_includes_interpolated_percentiles(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(12)
        registry.histogram("lat").observe(3.0)
        text = render_snapshot(registry.snapshot())
        assert "events" in text and "12" in text
        assert "p95=" in text  # the live renderer omits p95; exposition adds it


class TestSnapshotStream:
    def test_writer_truncates_and_sequences(self, tmp_path):
        path = str(tmp_path / "snaps.jsonl")
        registry = MetricsRegistry()
        registry.counter("c").inc()
        writer = SnapshotWriter(path)
        writer.write(registry)
        registry.counter("c").inc()
        writer.write(registry, extra={"spans_dropped": 0})
        records = read_snapshots(path)
        assert [r["seq"] for r in records] == [0, 1]
        assert records[0]["metrics"]["counters"]["c"] == 1
        assert records[1]["metrics"]["counters"]["c"] == 2
        assert records[1]["spans_dropped"] == 0
        assert all(r["uptime_us"] >= 0 for r in records)
        # A fresh writer documents a fresh run: the file restarts.
        SnapshotWriter(path)
        assert read_snapshots(path) == []

    def test_latest_snapshot_picks_highest_seq(self, tmp_path):
        path = str(tmp_path / "snaps.jsonl")
        registry = MetricsRegistry()
        writer = SnapshotWriter(path)
        for _ in range(3):
            writer.write(registry)
        assert latest_snapshot(path)["seq"] == 2

    def test_latest_snapshot_empty_stream_rejected(self, tmp_path):
        path = str(tmp_path / "snaps.jsonl")
        SnapshotWriter(path)
        with pytest.raises(ValueError):
            latest_snapshot(path)

    def test_corrupt_line_reported_with_number(self, tmp_path):
        path = tmp_path / "snaps.jsonl"
        path.write_text('{"seq": 0}\nnot json\n')
        with pytest.raises(ValueError, match=r":2:"):
            read_snapshots(str(path))


class TestSnapshotRotation:
    def _record_size(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        probe = str(tmp_path / "probe.jsonl")
        SnapshotWriter(probe).write(registry)
        import os

        return os.path.getsize(probe)

    def test_rotates_at_max_bytes_and_reads_both_generations(self, tmp_path):
        import os

        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = str(tmp_path / "snaps.jsonl")
        # Room for ~3 records per generation.
        writer = SnapshotWriter(path, max_bytes=self._record_size(tmp_path) * 3 + 8)
        for _ in range(8):
            writer.write(registry)
        assert writer.rotations >= 1
        assert os.path.exists(path + ".1")
        records = read_snapshots(path)
        seqs = [r["seq"] for r in records]
        # Reads span the rotation boundary, in order, ending at the newest.
        assert seqs == sorted(seqs)
        assert len(seqs) >= 4
        assert seqs[-1] == 7
        assert latest_snapshot(path)["seq"] == 7

    def test_only_one_previous_generation_kept(self, tmp_path):
        import os

        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = str(tmp_path / "snaps.jsonl")
        writer = SnapshotWriter(path, max_bytes=1)  # rotate on every write
        for _ in range(5):
            writer.write(registry)
        assert writer.rotations == 5
        siblings = sorted(os.listdir(tmp_path))
        assert siblings == ["snaps.jsonl", "snaps.jsonl.1"]

    def test_no_rotation_without_max_bytes(self, tmp_path):
        import os

        registry = MetricsRegistry()
        path = str(tmp_path / "snaps.jsonl")
        writer = SnapshotWriter(path)
        for _ in range(50):
            writer.write(registry)
        assert writer.rotations == 0
        assert not os.path.exists(path + ".1")

    def test_max_bytes_validated(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotWriter(str(tmp_path / "s.jsonl"), max_bytes=0)

    def test_read_snapshots_without_rotation_file(self, tmp_path):
        registry = MetricsRegistry()
        path = str(tmp_path / "snaps.jsonl")
        writer = SnapshotWriter(path, max_bytes=10_000_000)
        writer.write(registry)
        assert [r["seq"] for r in read_snapshots(path)] == [0]


class TestMetricsServer:
    def fetch(self, url):
        with urllib.request.urlopen(url) as response:
            return response.status, response.read().decode("utf-8")

    def test_routes(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(7)
        tracer = RingTracer(capacity=8)
        with tracer.span("probe"):
            pass
        with MetricsServer(registry, port=0, tracer=tracer) as server:
            status, prom = self.fetch(server.url + "/metrics")
            assert status == 200 and "repro_hits_total 7" in prom
            status, root = self.fetch(server.url + "/")
            assert root == prom
            status, raw = self.fetch(server.url + "/metrics.json")
            assert json.loads(raw)["counters"]["hits"] == 7
            status, trace = self.fetch(server.url + "/trace.json")
            loaded = json.loads(trace)
            assert loaded["traceEvents"][0]["name"] == "probe"

    def test_unknown_route_404(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                self.fetch(server.url + "/nope")
            assert exc_info.value.code == 404

    def test_trace_route_absent_without_tracer(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                self.fetch(server.url + "/trace.json")
            assert exc_info.value.code == 404
