"""Tests for metric exposition: bucket math, interpolated quantiles,
Prometheus rendering, JSONL snapshot streams, and the HTTP endpoint."""

import json
import math
import urllib.request

import pytest

from repro.obs.export import (
    MetricsServer,
    SnapshotWriter,
    bucket_bounds,
    estimate_quantile,
    estimate_quantiles,
    latest_snapshot,
    read_snapshots,
    render_prometheus,
    render_snapshot,
    sanitize_metric_name,
)
from repro.obs.tracing import RingTracer
from repro.runtime.metrics import N_HISTOGRAM_BUCKETS, Histogram, MetricsRegistry


class TestBucketBounds:
    def test_bucket_zero_is_unit_interval(self):
        assert bucket_bounds(0) == (0.0, 1.0)

    def test_power_of_two_buckets(self):
        assert bucket_bounds(1) == (1.0, 2.0)
        assert bucket_bounds(5) == (16.0, 32.0)

    def test_last_bucket_saturates(self):
        lo, hi = bucket_bounds(N_HISTOGRAM_BUCKETS - 1)
        assert lo == 2.0 ** (N_HISTOGRAM_BUCKETS - 2)
        assert math.isinf(hi)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            bucket_bounds(-1)
        with pytest.raises(ValueError):
            bucket_bounds(N_HISTOGRAM_BUCKETS)


class TestEstimateQuantile:
    def test_empty_is_zero(self):
        assert estimate_quantile([], 0, 0.5) == 0.0

    def test_quantile_domain_checked(self):
        with pytest.raises(ValueError):
            estimate_quantile([[0, 1]], 1, 1.5)

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(ValueError):
            estimate_quantile([[0, 1]], 10, 0.99)

    def test_single_bucket_interpolates_inside(self):
        # 4 observations in bucket 3 = [4, 8).
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            estimate = estimate_quantile([[3, 4]], 4, q)
            assert 4.0 <= estimate < 8.0

    def test_rank_walks_buckets(self):
        # 5 in [0,1), 5 in [2,4): the median is in the first bucket, p99
        # in the second.
        buckets = [[0, 5], [2, 5]]
        assert 0.0 <= estimate_quantile(buckets, 10, 0.5) < 1.0
        assert 2.0 <= estimate_quantile(buckets, 10, 0.99) < 4.0

    def test_saturated_top_bucket_returns_lower_bound(self):
        top = N_HISTOGRAM_BUCKETS - 1
        estimate = estimate_quantile([[top, 3]], 3, 0.99)
        assert estimate == bucket_bounds(top)[0]

    def test_from_live_histogram_snapshot(self):
        h = Histogram()
        for value in [1.0, 2.0, 3.0, 100.0]:
            h.observe(value)
        quantiles = estimate_quantiles(h.snapshot())
        assert set(quantiles) == {"p50", "p95", "p99"}
        # p99's rank-4 value 100.0 lives in bucket [64, 128).
        assert 64.0 <= quantiles["p99"] < 128.0
        # Never above the histogram's own conservative upper-bound quantile.
        assert quantiles["p99"] <= h.quantile(0.99)


class TestPrometheusRendering:
    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({"counters": {}, "gauges": {}, "histograms": {}}) == ""

    def test_sanitize(self):
        assert sanitize_metric_name("shard/0/batch_us") == "repro_shard_0_batch_us"
        assert sanitize_metric_name("x", prefix="") == "x"
        assert sanitize_metric_name("9lives", prefix="").startswith("_")

    def test_counter_gauge_histogram_lines(self):
        registry = MetricsRegistry()
        registry.counter("pipeline/events").inc(3)
        registry.gauge("queue").set(2.0)
        registry.histogram("lat").observe(5.0)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_pipeline_events_total counter" in text
        assert "repro_pipeline_events_total 3" in text
        assert "repro_queue 2" in text
        assert '# TYPE repro_lat summary' in text
        assert 'repro_lat{quantile="0.5"}' in text
        assert "repro_lat_sum 5" in text
        assert "repro_lat_count 1" in text
        assert text.endswith("\n")

    def test_total_suffix_not_doubled(self):
        registry = MetricsRegistry()
        registry.counter("durability/wal_fsync_total").inc()
        text = render_prometheus(registry.snapshot())
        assert "repro_durability_wal_fsync_total 1" in text
        assert "_total_total" not in text


class TestRenderSnapshot:
    def test_empty(self):
        assert render_snapshot({}) == "(no metrics recorded)"

    def test_includes_interpolated_percentiles(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(12)
        registry.histogram("lat").observe(3.0)
        text = render_snapshot(registry.snapshot())
        assert "events" in text and "12" in text
        assert "p95=" in text  # the live renderer omits p95; exposition adds it


class TestSnapshotStream:
    def test_writer_truncates_and_sequences(self, tmp_path):
        path = str(tmp_path / "snaps.jsonl")
        registry = MetricsRegistry()
        registry.counter("c").inc()
        writer = SnapshotWriter(path)
        writer.write(registry)
        registry.counter("c").inc()
        writer.write(registry, extra={"spans_dropped": 0})
        records = read_snapshots(path)
        assert [r["seq"] for r in records] == [0, 1]
        assert records[0]["metrics"]["counters"]["c"] == 1
        assert records[1]["metrics"]["counters"]["c"] == 2
        assert records[1]["spans_dropped"] == 0
        assert all(r["uptime_us"] >= 0 for r in records)
        # A fresh writer documents a fresh run: the file restarts.
        SnapshotWriter(path)
        assert read_snapshots(path) == []

    def test_latest_snapshot_picks_highest_seq(self, tmp_path):
        path = str(tmp_path / "snaps.jsonl")
        registry = MetricsRegistry()
        writer = SnapshotWriter(path)
        for _ in range(3):
            writer.write(registry)
        assert latest_snapshot(path)["seq"] == 2

    def test_latest_snapshot_empty_stream_rejected(self, tmp_path):
        path = str(tmp_path / "snaps.jsonl")
        SnapshotWriter(path)
        with pytest.raises(ValueError):
            latest_snapshot(path)

    def test_corrupt_line_reported_with_number(self, tmp_path):
        path = tmp_path / "snaps.jsonl"
        path.write_text('{"seq": 0}\nnot json\n')
        with pytest.raises(ValueError, match=r":2:"):
            read_snapshots(str(path))


class TestMetricsServer:
    def fetch(self, url):
        with urllib.request.urlopen(url) as response:
            return response.status, response.read().decode("utf-8")

    def test_routes(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(7)
        tracer = RingTracer(capacity=8)
        with tracer.span("probe"):
            pass
        with MetricsServer(registry, port=0, tracer=tracer) as server:
            status, prom = self.fetch(server.url + "/metrics")
            assert status == 200 and "repro_hits_total 7" in prom
            status, root = self.fetch(server.url + "/")
            assert root == prom
            status, raw = self.fetch(server.url + "/metrics.json")
            assert json.loads(raw)["counters"]["hits"] == 7
            status, trace = self.fetch(server.url + "/trace.json")
            loaded = json.loads(trace)
            assert loaded["traceEvents"][0]["name"] == "probe"

    def test_unknown_route_404(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                self.fetch(server.url + "/nope")
            assert exc_info.value.code == 404

    def test_trace_route_absent_without_tracer(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                self.fetch(server.url + "/trace.json")
            assert exc_info.value.code == 404
