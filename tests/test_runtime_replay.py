"""Replay-driver tests, including the 10k-event acceptance run: the
sharded+batched pipeline must produce exactly the unsharded facade's
per-event result deltas on a mixed insert/delete/subscribe stream."""

from repro.engine.events import DataEvent, EventKind, QueryEvent
from repro.runtime.replay import (
    StreamProfile,
    generate_mixed_stream,
    normalize_deltas,
    run_replay,
)


class TestStreamGenerator:
    def test_deterministic_per_seed(self):
        profile = StreamProfile(n_events=200, n_initial_queries=20, seed=3)

        def fingerprint(stream):
            out = []
            for event in stream:
                if isinstance(event, QueryEvent):
                    out.append(("Q", event.kind.name))
                else:
                    row = event.row
                    rid = row.rid if event.relation == "R" else row.sid
                    out.append((event.relation, event.kind.name, rid))
            return out

        a = generate_mixed_stream(profile)
        b = generate_mixed_stream(profile)
        assert fingerprint(a) == fingerprint(b)

    def test_counts_and_composition(self):
        profile = StreamProfile(
            n_events=500,
            n_initial_queries=30,
            query_event_fraction=0.05,
            delete_fraction=0.3,
            min_delete_age=16,
            seed=8,
        )
        stream = generate_mixed_stream(profile)
        data = [e for e in stream if isinstance(e, DataEvent)]
        queries = [e for e in stream if isinstance(e, QueryEvent)]
        assert len(data) == 500
        assert len(queries) >= 30
        assert any(e.kind is EventKind.DELETE for e in data)
        # Deletes only reference rows inserted earlier in the stream.
        seen = set()
        for event in data:
            row = event.row
            key = (event.relation, row.rid if event.relation == "R" else row.sid)
            if event.kind is EventKind.INSERT:
                seen.add(key)
            else:
                assert key in seen

    def test_normalize_deltas_sorts_ids(self):
        from repro.core.intervals import Interval
        from repro.engine.queries import SelectJoinQuery
        from repro.engine.table import STuple

        query = SelectJoinQuery(Interval(0, 1), Interval(0, 1))
        deltas = {query: [STuple(5, 0.0, 0.0), STuple(2, 0.0, 0.0)]}
        assert normalize_deltas(deltas) == {query.qid: (2, 5)}


class TestReplayEquivalence:
    def test_acceptance_10k_mixed_stream(self):
        """ISSUE acceptance: 10k data events (inserts, deletes,
        subscribe/unsubscribe mixed in) through the sharded+batched
        pipeline match the unsharded system's deltas event-for-event."""
        profile = StreamProfile(
            n_events=10_000,
            n_initial_queries=120,
            band_fraction=0.3,
            query_event_fraction=0.02,
            delete_fraction=0.2,
            seed=2006,
        )
        stream = generate_mixed_stream(profile)
        report = run_replay(stream, num_shards=4, batch_size=64)
        assert report.data_events == 10_000
        assert report.equivalent, report.summary()
        # churn=0: no co-pending pairs, so every event is compared strictly.
        assert report.coalesced_pairs == 0
        assert report.compared == 10_000
        assert report.pipeline_results == report.reference_results > 0

    def test_churn_stream_with_coalescing_stays_equivalent(self):
        profile = StreamProfile(
            n_events=1_500,
            n_initial_queries=80,
            delete_fraction=0.4,
            churn=0.5,
            min_delete_age=64,
            recent_window=16,
            seed=17,
        )
        stream = generate_mixed_stream(profile)
        report = run_replay(stream, num_shards=4, batch_size=32)
        assert report.coalesced_pairs > 0
        assert report.equivalent, report.summary()
        assert report.applied == report.data_events - 2 * report.coalesced_pairs

    def test_report_carries_metrics_and_router_stats(self):
        profile = StreamProfile(n_events=300, n_initial_queries=20, seed=4)
        report = run_replay(generate_mixed_stream(profile), num_shards=3)
        assert report.metrics["counters"]["pipeline/events_applied"] == 300
        assert report.router_stats["num_shards"] == 3
        assert sum(report.router_stats["select_probes_per_shard"]) > 0
        assert "EQUIVALENT" in report.summary()

    def test_degenerate_routing_domain_is_correctness_neutral(self):
        """Routing only affects load balance: even a domain that funnels
        every value into the edge shards must reproduce identical deltas."""
        profile = StreamProfile(n_events=200, n_initial_queries=25, seed=12)
        stream = generate_mixed_stream(profile)
        report = run_replay(stream, num_shards=5, batch_size=8,
                            domain_lo=0.0, domain_hi=1.0)
        assert report.equivalent, report.summary()
