"""End-to-end tests for the differential fuzzer: clean campaigns, conviction
of a deliberately broken implementation, shrinking, and reproducer replay."""

import pytest

from repro.check import ops as op_mod
from repro.check.ops import FuzzConfig, Op
from repro.check.runner import (
    fuzz,
    load_reproducer,
    normalize_ops,
    replay_reproducer,
    run_sequence,
    save_reproducer,
    shrink_ops,
)
from repro.check.targets import LazyTarget
from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.stabbing import canonical_stabbing_partition


class RecalOffByOne(LazyStabbingPartition):
    """The lazy strategy with an off-by-one in the recalibration acceptance:
    it keeps partitions one whole group above the (1 + eps) * tau budget
    instead of rebuilding, so fragmentation accumulates past Lemma 3's bound."""

    def _recalibrate_or_rebuild(self):
        items = self._all_items()
        tau = self._sweep_tau(items)
        self.recalibration_count += 1
        if len(self._groups) <= (1.0 + self._epsilon) * tau + 1:  # off by one
            self._tau0 = tau
            self._epoch += 1
            self._original_deletions = 0
            self._updates_since_recon = 0
            return
        self._install(canonical_stabbing_partition(items, self._interval_of))


BUGGY_LAZY = {"lazy": lambda: LazyTarget(partition_cls=RecalOffByOne)}

# Interval-domain-only workload with wide uniform intervals and heavy churn:
# deletions fragment groups (a wide member outlives its narrow co-members)
# fast enough to push |P| against the (1 + eps) * tau budget, where the
# broken acceptance above actually matters.  The clustered default workload
# stays far from the bound and would let the bug hide.
ADVERSARIAL = FuzzConfig(
    seed=0,
    n_ops=1_500,
    engine_fraction=0.0,
    uniform_interval_fraction=1.0,
    delete_fraction=0.5,
    churn=0.8,
    recent_window=20,
    max_live_intervals=40,
    param_change_fraction=0.05,
)


class TestCleanRuns:
    def test_default_targets_no_divergence(self):
        report = fuzz(FuzzConfig(seed=0, n_ops=400), check_every=16)
        assert report.ok, report.outcome.divergence
        assert report.outcome.ops_applied == 400
        assert report.outcome.check_rounds >= 400 // 16

    def test_adversarial_workload_clean_on_correct_code(self):
        report = fuzz(ADVERSARIAL, targets=["lazy"], check_every=1)
        assert report.ok, report.outcome.divergence

    def test_run_sequence_skips_illegal_ops(self):
        ops = [
            Op(op_mod.INSERT_INTERVAL, 0, (0.0, 5.0)),
            Op(op_mod.DELETE_INTERVAL, 99),  # never inserted
            Op(op_mod.DELETE_INTERVAL, 0),
        ]
        outcome = run_sequence(ops, targets=["lazy"])
        assert outcome.ok
        assert outcome.ops_applied == 2

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            run_sequence([], targets=["warp-drive"])


class TestInjectedBug:
    """The acceptance gate for the whole subsystem: a planted off-by-one in
    ``LazyStabbingPartition`` must be caught and shrunk to a tiny reproducer."""

    def test_off_by_one_is_caught_and_shrunk(self, tmp_path):
        report = fuzz(
            ADVERSARIAL, targets=["lazy"], check_every=1, factories=BUGGY_LAZY
        )
        assert not report.ok, "the planted bug escaped the fuzzer"
        assert report.outcome.divergence.target == "lazy"
        assert "groups >" in report.outcome.divergence.message

        assert report.shrunk_ops is not None
        assert len(report.shrunk_ops) <= 12
        assert report.shrunk_divergence.target == "lazy"

        # The shrunk sequence still convicts the buggy implementation ...
        outcome = run_sequence(
            report.shrunk_ops, targets=["lazy"], check_every=1,
            factories=BUGGY_LAZY,
        )
        assert outcome.divergence is not None
        assert outcome.divergence.target == "lazy"
        # ... and passes against the correct one (it is the bug's fault,
        # not the sequence's).
        assert run_sequence(report.shrunk_ops, targets=["lazy"], check_every=1).ok

        # Reproducer JSON round-trips through save/replay.
        path = tmp_path / "repro.json"
        save_reproducer(str(path), report.reproducer())
        data = load_reproducer(str(path))
        assert data["version"] == 1
        assert data["seed"] == ADVERSARIAL.seed
        assert len(data["ops"]) == len(report.shrunk_ops)
        replayed = replay_reproducer(str(path), factories=BUGGY_LAZY)
        assert replayed.divergence is not None
        assert replayed.divergence.target == "lazy"
        assert replay_reproducer(str(path)).ok


class TestShrinking:
    def test_normalize_drops_dangling_ops(self):
        ops = [
            Op(op_mod.INSERT_INTERVAL, 0, (0.0, 5.0)),
            Op(op_mod.DELETE_INTERVAL, 1),  # dangling after removing insert 1
            Op(op_mod.DELETE_INTERVAL, 0),
            Op(op_mod.DELETE_INTERVAL, 0),  # double delete
            Op(op_mod.UNSUB, 3),
        ]
        assert normalize_ops(ops) == [ops[0], ops[2]]

    def test_shrink_preserves_failing_target(self):
        report = fuzz(
            ADVERSARIAL, targets=["lazy"], check_every=1, shrink=False,
            factories=BUGGY_LAZY,
        )
        assert not report.ok
        shrunk, divergence = shrink_ops(
            report.ops, report.outcome.divergence,
            targets=["lazy"], factories=BUGGY_LAZY,
        )
        assert divergence.target == "lazy"
        assert len(shrunk) <= report.outcome.divergence.op_index + 1
        # Minimality in the ddmin sense: dropping any single op (with
        # dependency closure) no longer reproduces the divergence.
        for index in range(len(shrunk)):
            candidate = normalize_ops(shrunk[:index] + shrunk[index + 1:])
            outcome = run_sequence(
                candidate, targets=["lazy"], check_every=1, factories=BUGGY_LAZY
            )
            assert (
                outcome.ok or outcome.divergence.target != "lazy"
                or len(candidate) == len(shrunk)
            )
