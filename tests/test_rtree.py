"""Tests for the Guttman R-tree: rectangle algebra, stabbing, deletion."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dstruct.rtree import Rect, RTree


def rect_strategy(limit=50, max_side=20):
    def build(x, y, w, h):
        return Rect(x, y, x + w, y + h)

    coord = st.integers(-limit, limit).map(float)
    side = st.integers(0, max_side).map(float)
    return st.builds(build, coord, coord, side, side)


class TestRect:
    def test_validation(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_contains_point_closed(self):
        rect = Rect(0, 0, 2, 3)
        assert rect.contains_point(0, 0)
        assert rect.contains_point(2, 3)
        assert not rect.contains_point(2.001, 1)

    def test_intersects(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(2, 2, 3, 3))  # touching corners
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))

    def test_union_and_area(self):
        u = Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3))
        assert u == Rect(0, 0, 3, 3)
        assert u.area == 9.0

    def test_enlargement(self):
        assert Rect(0, 0, 1, 1).enlargement(Rect(0, 0, 1, 2)) == 1.0
        assert Rect(0, 0, 2, 2).enlargement(Rect(1, 1, 2, 2)) == 0.0


class TestRTreeBasics:
    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            RTree(3)

    def test_stab(self):
        tree = RTree(4)
        tree.insert(Rect(0, 0, 10, 10), "big")
        tree.insert(Rect(2, 2, 4, 4), "small")
        tree.insert(Rect(20, 20, 30, 30), "far")
        assert {p for __, p in tree.stab(3, 3)} == {"big", "small"}
        assert {p for __, p in tree.stab(15, 15)} == set()

    def test_search_window(self):
        tree = RTree(4)
        for i in range(10):
            tree.insert(Rect(i, i, i + 1, i + 1), i)
        hits = {p for __, p in tree.search(Rect(2.5, 2.5, 5.5, 5.5))}
        assert hits == {2, 3, 4, 5}

    def test_growth_keeps_invariants(self):
        tree = RTree(4)
        rng = random.Random(1)
        for i in range(300):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            tree.insert(Rect(x, y, x + rng.uniform(0, 5), y + rng.uniform(0, 5)), i)
        tree.check_invariants()
        assert len(tree) == 300

    def test_remove(self):
        tree = RTree(4)
        tree.insert(Rect(0, 0, 1, 1), "a")
        tree.insert(Rect(0, 0, 1, 1), "b")
        tree.remove(Rect(0, 0, 1, 1), "a")
        assert [p for __, p in tree.stab(0.5, 0.5)] == ["b"]

    def test_remove_missing_raises(self):
        tree = RTree(4)
        tree.insert(Rect(0, 0, 1, 1), "a")
        with pytest.raises(KeyError):
            tree.remove(Rect(0, 0, 1, 1), "zzz")
        with pytest.raises(KeyError):
            tree.remove(Rect(5, 5, 6, 6), "a")

    def test_node_visit_counter(self):
        tree = RTree(4)
        for i in range(50):
            tree.insert(Rect(i, 0, i + 1, 1), i)
        tree.reset_counters()
        tree.stab(25.5, 0.5)
        assert tree.node_visits > 0


@given(
    st.lists(rect_strategy(), min_size=1, max_size=60),
    st.lists(st.tuples(st.integers(-55, 55), st.integers(-55, 55)), min_size=1, max_size=15),
)
@settings(max_examples=60, deadline=None)
def test_stab_matches_bruteforce(rects, probes):
    tree = RTree(4)
    for i, rect in enumerate(rects):
        tree.insert(rect, i)
    tree.check_invariants()
    for x, y in probes:
        got = sorted(p for __, p in tree.stab(x, y))
        want = sorted(i for i, rect in enumerate(rects) if rect.contains_point(x, y))
        assert got == want


@given(st.lists(rect_strategy(), min_size=1, max_size=50), st.data())
@settings(max_examples=50, deadline=None)
def test_deletions_keep_correctness(rects, data):
    tree = RTree(4)
    live = {}
    for i, rect in enumerate(rects):
        tree.insert(rect, i)
        live[i] = rect
    deletions = data.draw(st.integers(0, len(rects)))
    for __ in range(deletions):
        i = data.draw(st.sampled_from(sorted(live)))
        tree.remove(live.pop(i), i)
    tree.check_invariants()
    assert len(tree) == len(live)
    for x, y in [(-30, -30), (0, 0), (10, 5), (30, 30)]:
        got = sorted(p for __, p in tree.stab(x, y))
        want = sorted(i for i, rect in live.items() if rect.contains_point(x, y))
        assert got == want


@given(st.lists(rect_strategy(), min_size=1, max_size=40), rect_strategy())
@settings(max_examples=50, deadline=None)
def test_window_search_matches_bruteforce(rects, window):
    tree = RTree(5)
    for i, rect in enumerate(rects):
        tree.insert(rect, i)
    got = sorted(p for __, p in tree.search(window))
    want = sorted(i for i, rect in enumerate(rects) if rect.intersects(window))
    assert got == want
