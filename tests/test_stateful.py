"""Hypothesis stateful (model-based) tests.

Each machine drives a structure through arbitrary interleaved operation
sequences while checking it against a trivial model after every step ---
the strongest guard against ordering-dependent bugs in the dynamic
structures (B+ tree rebalancing, partition reconstruction, hotspot
promote/demote, skip-list mark repair).
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.hotspot_tracker import HotspotTracker
from repro.core.intervals import Interval
from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.refined_partition import RefinedStabbingPartition
from repro.core.stabbing import stabbing_number
from repro.dstruct.btree import BPlusTree
from repro.dstruct.interval_skip_list import IntervalSkipList
from repro.dstruct.interval_tree import IntervalTree

KEYS = st.integers(0, 40)
INTERVAL_LO = st.integers(-20, 20)
INTERVAL_LEN = st.integers(0, 12)


class BPlusTreeMachine(RuleBasedStateMachine):
    """B+ tree vs a sorted-list model."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(4)
        self.model = []  # list of (key, token)
        self.counter = 0

    @rule(key=KEYS)
    def insert(self, key):
        token = self.counter
        self.counter += 1
        self.tree.insert(key, token)
        self.model.append((key, token))

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data):
        key, token = self.model.pop(data.draw(st.integers(0, len(self.model) - 1)))
        assert self.tree.remove(key, token) == token

    @rule(key=KEYS)
    def probe(self, key):
        expected = sorted(k for k, __ in self.model)
        ge = self.tree.cursor_ge(key)
        want_ge = min((k for k in expected if k >= key), default=None)
        assert (ge.key if ge.valid else None) == want_ge
        le = self.tree.cursor_le(key)
        want_le = max((k for k in expected if k <= key), default=None)
        assert (le.key if le.valid else None) == want_le

    @invariant()
    def structure_and_contents(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.model)
        assert [k for k, __ in self.tree.items()] == sorted(k for k, __ in self.model)


class StabbingIndexMachine(RuleBasedStateMachine):
    """Interval tree and interval skip list vs a list model, in lockstep."""

    def __init__(self):
        super().__init__()
        self.tree = IntervalTree(rng=random.Random(1))
        self.skip = IntervalSkipList(rng=random.Random(2))
        self.model = []  # (interval, token)
        self.counter = 0

    @rule(lo=INTERVAL_LO, length=INTERVAL_LEN)
    def insert(self, lo, length):
        interval = Interval(float(lo), float(lo + length))
        token = self.counter
        self.counter += 1
        self.tree.insert(interval, token)
        self.skip.insert(interval, token)
        self.model.append((interval, token))

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data):
        interval, token = self.model.pop(
            data.draw(st.integers(0, len(self.model) - 1))
        )
        self.tree.remove(interval, token)
        self.skip.remove(interval, token)

    @rule(x=st.integers(-25, 40))
    def stab(self, x):
        want = sorted(t for iv, t in self.model if iv.contains(float(x)))
        assert sorted(t for __, t in self.tree.stab(float(x))) == want
        assert sorted(t for __, t in self.skip.stab(float(x))) == want

    @invariant()
    def sizes_agree(self):
        assert len(self.tree) == len(self.model)
        assert len(self.skip) == len(self.model)


class LazyPartitionMachine(RuleBasedStateMachine):
    """Lazy partition: validity + (1 + eps) bound after every operation."""

    def __init__(self):
        super().__init__()
        self.partition = LazyStabbingPartition(epsilon=1.0)
        self.live = []

    @rule(lo=INTERVAL_LO, length=INTERVAL_LEN)
    def insert(self, lo, length):
        interval = Interval(float(lo), float(lo + length))
        self.partition.insert(interval)
        self.live.append(interval)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def delete(self, data):
        victim = self.live.pop(data.draw(st.integers(0, len(self.live) - 1)))
        self.partition.delete(victim)

    @invariant()
    def partition_valid_and_bounded(self):
        self.partition.validate()
        assert self.partition.total_items() == len(self.live)
        tau = stabbing_number(self.live)
        assert len(self.partition) <= 2.0 * tau + 1e-9


class RefinedPartitionMachine(RuleBasedStateMachine):
    """Refined (Appendix B) partition under the same contract."""

    def __init__(self):
        super().__init__()
        self.partition = RefinedStabbingPartition(epsilon=1.0, seed=3)
        self.live = []

    @rule(lo=INTERVAL_LO, length=INTERVAL_LEN)
    def insert(self, lo, length):
        interval = Interval(float(lo), float(lo + length))
        self.partition.insert(interval)
        self.live.append(interval)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def delete(self, data):
        victim = self.live.pop(data.draw(st.integers(0, len(self.live) - 1)))
        self.partition.delete(victim)

    @invariant()
    def partition_valid_and_bounded(self):
        self.partition.validate()
        assert self.partition.total_items() == len(self.live)
        tau = stabbing_number(self.live)
        assert len(self.partition) <= 2.0 * tau + 1e-9


class HotspotTrackerMachine(RuleBasedStateMachine):
    """Hotspot tracker: invariants I1-I3 after every operation."""

    def __init__(self):
        super().__init__()
        self.tracker = HotspotTracker(alpha=0.25)
        self.live = []

    @rule(lo=INTERVAL_LO, length=INTERVAL_LEN)
    def insert(self, lo, length):
        interval = Interval(float(lo), float(lo + length))
        self.tracker.insert(interval)
        self.live.append(interval)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def delete(self, data):
        victim = self.live.pop(data.draw(st.integers(0, len(self.live) - 1)))
        self.tracker.delete(victim)

    @invariant()
    def tracker_invariants(self):
        self.tracker.validate()
        assert len(self.tracker) == len(self.live)
        assert self.tracker.boundary_moves() <= 5 * max(self.tracker.update_count, 1)


COMMON = settings(max_examples=25, stateful_step_count=30, deadline=None)

TestBPlusTreeMachine = BPlusTreeMachine.TestCase
TestBPlusTreeMachine.settings = COMMON
TestStabbingIndexMachine = StabbingIndexMachine.TestCase
TestStabbingIndexMachine.settings = COMMON
TestLazyPartitionMachine = LazyPartitionMachine.TestCase
TestLazyPartitionMachine.settings = COMMON
TestRefinedPartitionMachine = RefinedPartitionMachine.TestCase
TestRefinedPartitionMachine.settings = COMMON
TestHotspotTrackerMachine = HotspotTrackerMachine.TestCase
TestHotspotTrackerMachine.settings = COMMON
