"""Tests for the dynamic interval tree (stabbing index)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.dstruct.interval_tree import IntervalTree

from conftest import int_interval_strategy


class TestBasics:
    def test_stab_hits_and_misses(self):
        tree = IntervalTree(rng=random.Random(1))
        tree.insert(Interval(0, 10), "a")
        tree.insert(Interval(5, 15), "b")
        tree.insert(Interval(20, 30), "c")
        assert {p for __, p in tree.stab(7)} == {"a", "b"}
        assert {p for __, p in tree.stab(0)} == {"a"}
        assert tree.stab(16) == []
        assert {p for __, p in tree.stab(20)} == {"c"}

    def test_closed_endpoints(self):
        tree = IntervalTree()
        tree.insert(Interval(1, 2), "x")
        assert tree.stab(1) and tree.stab(2)
        assert not tree.stab(0.999) and not tree.stab(2.001)

    def test_len_and_iter(self):
        tree = IntervalTree()
        tree.insert(Interval(0, 1), 1)
        tree.insert(Interval(2, 3), 2)
        assert len(tree) == 2
        assert sorted(payload for __, payload in tree) == [1, 2]
        assert bool(tree)

    def test_empty(self):
        tree = IntervalTree()
        assert len(tree) == 0
        assert not tree
        assert tree.stab(0) == []

    def test_stab_count_matches_stab(self):
        tree = IntervalTree()
        for i in range(5):
            tree.insert(Interval(0, 10), i)
        assert tree.stab_count(5) == 5


class TestRemove:
    def test_remove(self):
        tree = IntervalTree()
        tree.insert(Interval(0, 10), "a")
        tree.insert(Interval(0, 10), "b")
        tree.remove(Interval(0, 10), "a")
        assert [p for __, p in tree.stab(5)] == ["b"]

    def test_remove_missing_raises(self):
        tree = IntervalTree()
        tree.insert(Interval(0, 1), "a")
        with pytest.raises(KeyError):
            tree.remove(Interval(0, 1), "zzz")
        with pytest.raises(KeyError):
            tree.remove(Interval(5, 6), "a")

    def test_remove_by_identity(self):
        tree = IntervalTree()
        a = ["payload"]
        b = ["payload"]  # equal but distinct object
        tree.insert(Interval(0, 1), a)
        tree.insert(Interval(0, 1), b)
        tree.remove(Interval(0, 1), b)
        assert tree.stab(0.5)[0][1] is a


@given(
    st.lists(int_interval_strategy(), min_size=1, max_size=50),
    st.lists(st.integers(-60, 60), min_size=1, max_size=20),
)
@settings(max_examples=80)
def test_stab_matches_bruteforce(intervals, probes):
    tree = IntervalTree(rng=random.Random(3))
    for i, interval in enumerate(intervals):
        tree.insert(interval, i)
    for x in probes:
        got = sorted(payload for __, payload in tree.stab(x))
        want = sorted(i for i, interval in enumerate(intervals) if interval.contains(x))
        assert got == want
        assert sorted(p for __, p in tree.iter_stab(x)) == want


@given(
    st.lists(int_interval_strategy(), min_size=1, max_size=40),
    st.data(),
)
@settings(max_examples=60)
def test_stab_after_random_deletions(intervals, data):
    tree = IntervalTree(rng=random.Random(4))
    live = {}
    for i, interval in enumerate(intervals):
        tree.insert(interval, i)
        live[i] = interval
    delete_count = data.draw(st.integers(0, len(intervals)))
    for __ in range(delete_count):
        i = data.draw(st.sampled_from(sorted(live)))
        tree.remove(live.pop(i), i)
    assert len(tree) == len(live)
    for x in (-60, -10, 0, 10, 60):
        got = sorted(payload for __, payload in tree.stab(x))
        want = sorted(i for i, interval in live.items() if interval.contains(x))
        assert got == want
