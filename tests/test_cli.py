"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro" in out and "repro.core" in out


def test_zipf(capsys):
    assert main(["zipf", "--groups", "5000", "--beta", "1.0", "--top", "500"]) == 0
    out = capsys.readouterr().out
    assert "top-500" in out
    # The Figure 2 anchor: ~70% coverage.
    assert any(token.endswith("%") for token in out.split())


def test_zipf_top_clipped(capsys):
    assert main(["zipf", "--groups", "10", "--top", "99"]) == 0
    assert "top-10" in capsys.readouterr().out


def test_partition_from_file(tmp_path, capsys):
    path = tmp_path / "intervals.txt"
    path.write_text("# comment\n0 10\n2 8\n50 60\n\n")
    assert main(["partition", str(path), "--alpha", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "tau = 2" in out
    assert "HOTSPOT" in out


def test_partition_empty_file(tmp_path, capsys):
    path = tmp_path / "empty.txt"
    path.write_text("\n")
    assert main(["partition", str(path)]) == 1


def test_partition_malformed(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("1 2 3\n")
    with pytest.raises(SystemExit):
        main(["partition", str(path)])


def test_validate(capsys):
    assert main(["validate", "--trials", "1", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "40/40" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_info_lists_runtime(capsys):
    assert main(["info"]) == 0
    assert "repro.runtime" in capsys.readouterr().out


def test_replay_small_stream(capsys):
    assert main([
        "replay", "--events", "300", "--queries", "30", "--shards", "3",
        "--batch-size", "16", "--seed", "5",
    ]) == 0
    out = capsys.readouterr().out
    assert "EQUIVALENT" in out
    assert "router:" in out


def test_replay_churn_verbose(capsys):
    assert main([
        "replay", "--events", "300", "--queries", "30", "--churn", "0.5",
        "--delete-fraction", "0.4", "--verbose",
    ]) == 0
    out = capsys.readouterr().out
    assert "EQUIVALENT" in out
    assert "pipeline/events_applied" in out


def test_fuzz_clean_run(capsys):
    assert main(["fuzz", "--ops", "200", "--seed", "0", "--check-every", "16"]) == 0
    out = capsys.readouterr().out
    assert "zero divergences" in out
    assert "200 ops applied" in out


def test_fuzz_target_subset(capsys):
    assert main(["fuzz", "--ops", "150", "--targets", "lazy,tracker"]) == 0
    out = capsys.readouterr().out
    assert "lazy, tracker" in out


def test_fuzz_unknown_target_rejected():
    with pytest.raises(ValueError):
        main(["fuzz", "--ops", "10", "--targets", "quantum"])


def test_fuzz_replay_clean_reproducer(tmp_path, capsys):
    from repro.check import reproducer_dict, save_reproducer
    from repro.check.ops import FuzzConfig, generate_ops
    from repro.check.runner import DivergenceRecord

    ops = generate_ops(FuzzConfig(seed=1, n_ops=60))
    path = tmp_path / "repro.json"
    # A reproducer whose recorded divergence no longer fires (e.g. after the
    # bug it convicted was fixed) replays clean and exits 0.
    save_reproducer(
        str(path),
        reproducer_dict(
            ops, DivergenceRecord(0, "lazy", "stale"), targets=["lazy"], seed=1
        ),
    )
    assert main(["fuzz", "--replay", str(path)]) == 0
    assert "no longer diverges" in capsys.readouterr().out


def test_serve_reports_metrics(capsys):
    assert main([
        "serve", "--events", "400", "--queries", "20", "--shards", "2",
        "--report-every", "200",
    ]) == 0
    out = capsys.readouterr().out
    assert "events/s" in out
    assert "pipeline/events_applied" in out


def test_info_lists_durability(capsys):
    assert main(["info"]) == 0
    assert "repro.durability" in capsys.readouterr().out


def test_serve_wal_then_recover_round_trip(tmp_path, capsys):
    wal_dir = tmp_path / "wal"
    assert main([
        "serve", "--events", "400", "--queries", "20", "--shards", "2",
        "--report-every", "200", "--wal-dir", str(wal_dir),
        "--checkpoint-every", "150", "--fsync", "never",
    ]) == 0
    out = capsys.readouterr().out
    assert "recovery: no checkpoint" in out          # fresh directory
    assert "durability/wal_append_seconds" in out

    assert main(["recover", "--wal-dir", str(wal_dir)]) == 0
    out = capsys.readouterr().out
    assert "checkpoint@" in out
    assert "recovered state:" in out


def test_serve_wal_resumes_completed_stream(tmp_path, capsys):
    wal_dir = tmp_path / "wal"
    args = [
        "serve", "--events", "300", "--queries", "15", "--shards", "2",
        "--report-every", "200", "--wal-dir", str(wal_dir), "--fsync", "never",
    ]
    assert main(args) == 0
    capsys.readouterr()
    # Second run recovers everything and has nothing left to serve.
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "resuming the deterministic stream" in out
    assert "served 0 events" in out


def test_serve_wal_rejects_non_block_policy(tmp_path, capsys):
    assert main([
        "serve", "--events", "10", "--wal-dir", str(tmp_path / "wal"),
        "--policy", "reject",
    ]) == 2
    assert "requires --policy block" in capsys.readouterr().err


def test_recover_empty_directory(tmp_path, capsys):
    assert main(["recover", "--wal-dir", str(tmp_path / "nothing")]) == 0
    out = capsys.readouterr().out
    assert "no checkpoint" in out
    assert "0 subscription(s)" in out


def test_fuzz_durability_target(capsys):
    assert main([
        "fuzz", "--ops", "120", "--targets", "durability", "--check-every", "24",
    ]) == 0
    assert "zero divergences" in capsys.readouterr().out
