"""Tests for the treap (split/join balanced BST) and its interval
aggregation --- the per-group structure of the Appendix B algorithm."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval, common_intersection
from repro.dstruct.treap import IntervalTreap, Treap

from conftest import int_interval_strategy


def make_treap(seed=1, **kwargs):
    return Treap(rng=random.Random(seed), **kwargs)


class TestOrdering:
    def test_insert_iterates_in_key_order(self):
        t = make_treap()
        for key in [5, 1, 3, 2, 4]:
            t.insert(key, f"v{key}")
        assert [k for k, __ in t.items()] == [1, 2, 3, 4, 5]

    def test_duplicate_keys_allowed(self):
        t = make_treap()
        t.insert(1, "a")
        t.insert(1, "b")
        assert len(t) == 2
        assert sorted(t.items_values()) == ["a", "b"]

    def test_min_max(self):
        t = make_treap()
        for key in [7, 2, 9]:
            t.insert(key, key)
        assert t.min_key() == 2
        assert t.max_key() == 9
        assert t.min_value() == 2

    def test_empty_min_raises(self):
        with pytest.raises(IndexError):
            make_treap().min_key()


class TestRemove:
    def test_remove_returns_value(self):
        t = make_treap()
        t.insert(1, "x")
        assert t.remove(1) == "x"
        assert len(t) == 0

    def test_remove_missing_raises(self):
        t = make_treap()
        t.insert(1, "x")
        with pytest.raises(KeyError):
            t.remove(2)

    def test_remove_with_match(self):
        t = make_treap()
        t.insert(1, "a")
        t.insert(1, "b")
        assert t.remove(1, match=lambda v: v == "b") == "b"
        assert list(t.items_values()) == ["a"]

    def test_remove_no_match_raises(self):
        t = make_treap()
        t.insert(1, "a")
        with pytest.raises(KeyError):
            t.remove(1, match=lambda v: v == "zzz")


class TestSplitJoin:
    def test_split_after_equal(self):
        t = make_treap()
        for key in range(10):
            t.insert(key, key)
        prefix = t.split(4)
        assert [k for k, __ in prefix.items()] == [0, 1, 2, 3, 4]
        assert [k for k, __ in t.items()] == [5, 6, 7, 8, 9]

    def test_split_before_equal(self):
        t = make_treap()
        for key in [1, 2, 2, 3]:
            t.insert(key, key)
        prefix = t.split(2, after_equal=False)
        assert [k for k, __ in prefix.items()] == [1]
        assert [k for k, __ in t.items()] == [2, 2, 3]

    def test_join(self):
        a = make_treap()
        b = make_treap(seed=2)
        for key in [1, 2]:
            a.insert(key, key)
        for key in [3, 4]:
            b.insert(key, key)
        a.join(b)
        assert [k for k, __ in a.items()] == [1, 2, 3, 4]
        assert len(b) == 0

    def test_join_order_violation_rejected(self):
        a = make_treap()
        b = make_treap(seed=2)
        a.insert(5, 5)
        b.insert(1, 1)
        with pytest.raises(ValueError):
            a.join(b)

    def test_join_with_empty(self):
        a = make_treap()
        a.insert(1, 1)
        a.join(make_treap(seed=3))
        assert len(a) == 1

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=60), st.integers(0, 100))
    @settings(max_examples=60)
    def test_split_join_roundtrip(self, keys, split_key):
        t = make_treap()
        for key in keys:
            t.insert(key, key)
        prefix = t.split(split_key)
        assert all(k <= split_key for k, __ in prefix.items())
        assert all(k > split_key for k, __ in t.items())
        prefix.join(t)
        assert [k for k, __ in prefix.items()] == sorted(keys)


class TestAggregate:
    def test_sum_aggregate(self):
        t = Treap(aggregate=(lambda v: v, lambda a, b: a + b), rng=random.Random(1))
        for value in [3, 1, 4, 1, 5]:
            t.insert(value, value)
        assert t.aggregate == 14
        t.remove(4)
        assert t.aggregate == 10

    def test_aggregate_none_when_empty(self):
        t = Treap(aggregate=(lambda v: v, lambda a, b: a + b))
        assert t.aggregate is None

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=50), st.integers(-60, 60))
    @settings(max_examples=60)
    def test_aggregate_survives_splits(self, values, split_key):
        t = Treap(aggregate=(lambda v: v, lambda a, b: a + b), rng=random.Random(7))
        for value in values:
            t.insert(value, value)
        prefix = t.split(split_key)
        left = [v for v in values if v <= split_key]
        right = [v for v in values if v > split_key]
        assert prefix.aggregate == (sum(left) if left else None)
        assert t.aggregate == (sum(right) if right else None)


class TestIntervalTreap:
    def test_common_intersection(self):
        t = IntervalTreap(rng=random.Random(1))
        t.add(Interval(0, 10))
        t.add(Interval(2, 8))
        assert t.common_intersection == Interval(2, 8)
        t.add(Interval(5, 20))
        assert t.common_intersection == Interval(5, 8)

    def test_disjoint_members_give_none(self):
        t = IntervalTreap(rng=random.Random(1))
        t.add(Interval(0, 1))
        t.add(Interval(5, 6))
        assert t.common_intersection is None

    def test_discard(self):
        t = IntervalTreap(rng=random.Random(1))
        a, b = Interval(0, 10), Interval(2, 4)
        t.add(a)
        t.add(b)
        t.discard(b)
        assert t.common_intersection == Interval(0, 10)
        with pytest.raises(KeyError):
            t.discard(Interval(99, 100))

    def test_split_left_of(self):
        t = IntervalTreap(rng=random.Random(1))
        for interval in [Interval(0, 10), Interval(3, 12), Interval(7, 20)]:
            t.add(interval)
        prefix = t.split_left_of(5)
        assert sorted(iv.lo for iv in prefix) == [0, 3]
        assert [iv.lo for iv in t] == [7]

    @given(st.lists(int_interval_strategy(), min_size=1, max_size=40))
    @settings(max_examples=80)
    def test_aggregate_matches_common_intersection(self, intervals):
        t = IntervalTreap(rng=random.Random(5))
        for interval in intervals:
            t.add(interval)
        assert t.common_intersection == common_intersection(intervals)
