"""Tests for the runtime metrics primitives: counters/gauges/histograms under
concurrent writers, log2 bucketing, registry snapshots and the hotspot-churn
listener."""

import threading

import pytest

from repro.core.hotspot_tracker import HotspotTracker
from repro.core.intervals import Interval
from repro.runtime.metrics import (
    Counter,
    Gauge,
    Histogram,
    HotspotMetricsListener,
    MetricsRegistry,
    null_registry,
)


def hammer(n_threads, fn):
    """Run ``fn`` concurrently from ``n_threads`` threads, all released at
    once, and join them."""
    barrier = threading.Barrier(n_threads)

    def work():
        barrier.wait()
        fn()

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestCounter:
    def test_inc_and_value(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_concurrent_writers_lose_nothing(self):
        c = Counter()
        n_threads, per_thread = 8, 5_000
        hammer(n_threads, lambda: [c.inc() for _ in range(per_thread)])
        assert c.value == n_threads * per_thread


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge()
        g.set(3.5)
        g.set(-1.0)
        assert g.value == -1.0

    def test_concurrent_writers_leave_one_written_value(self):
        g = Gauge()
        values = [float(i) for i in range(16)]
        counter = iter(values)
        lock = threading.Lock()

        def write():
            with lock:
                value = next(counter)
            g.set(value)

        hammer(len(values), write)
        assert g.value in values


class TestHistogram:
    def test_empty_snapshot(self):
        h = Histogram()
        assert h.count == 0 and h.mean == 0.0
        assert h.quantile(0.99) == 0.0
        assert h.snapshot() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "p50": 0.0, "p99": 0.0, "buckets": [],
        }

    def test_basic_stats(self):
        h = Histogram()
        for value in [1.0, 2.0, 3.0, 10.0]:
            h.observe(value)
        assert h.count == 4
        assert h.mean == pytest.approx(4.0)
        snap = h.snapshot()
        assert snap["min"] == 1.0 and snap["max"] == 10.0 and snap["sum"] == 16.0

    def test_negative_observations_clamp_to_zero(self):
        h = Histogram()
        h.observe(-5.0)
        assert h.count == 1
        assert h.snapshot()["min"] == 0.0 and h.snapshot()["max"] == 0.0

    def test_quantiles_within_factor_of_two(self):
        """Log2 bucketing: the reported quantile is the upper bound of the
        bucket holding the requested rank, so it overestimates the true
        quantile by at most 2x and never underestimates it."""
        h = Histogram()
        values = [float(v) for v in range(1, 1_000)]
        for value in values:
            h.observe(value)
        for q in (0.5, 0.9, 0.99):
            true = values[int(q * len(values)) - 1]
            got = h.quantile(q)
            assert true <= got <= 2.0 * true

    def test_quantile_domain_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_huge_values_saturate_last_bucket(self):
        h = Histogram()
        h.observe(2.0**100)
        assert h.quantile(1.0) == 2.0**63  # clamped to the last bucket bound
        assert h.snapshot()["max"] == 2.0**100  # exact extremes still kept

    def test_concurrent_observers_lose_nothing(self):
        h = Histogram()
        n_threads, per_thread = 8, 2_000
        hammer(
            n_threads,
            lambda: [h.observe(float(i % 37)) for i in range(per_thread)],
        )
        total = n_threads * per_thread
        assert h.count == total
        assert h.snapshot()["sum"] == pytest.approx(
            n_threads * sum(float(i % 37) for i in range(per_thread))
        )


class TestRegistry:
    def test_creation_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a/b") is registry.counter("a/b")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_concurrent_creation_yields_one_instance(self):
        registry = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def create():
            c = registry.counter("hot/path")
            with lock:
                seen.append(c)
            c.inc()

        hammer(16, create)
        assert all(c is seen[0] for c in seen)
        assert registry.counter("hot/path").value == 16

    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("z").inc(2)
        registry.counter("a").inc()
        registry.gauge("depth").set(7.0)
        registry.histogram("lat").observe(3.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["counters"]["z"] == 2
        assert snap["gauges"]["depth"] == 7.0
        assert snap["histograms"]["lat"]["count"] == 1

    def test_render(self):
        registry = MetricsRegistry()
        assert registry.render() == "(no metrics recorded)"
        registry.counter("pipeline/events").inc(1_234)
        registry.gauge("queue").set(5.0)
        registry.histogram("batch").observe(12.0)
        text = registry.render()
        assert "pipeline/events" in text and "1,234" in text
        assert "queue" in text and "batch" in text

    def test_null_registry(self):
        assert null_registry() is None


class TestHotspotMetricsListener:
    def test_promotions_and_demotions_counted(self):
        registry = MetricsRegistry()
        tracker = HotspotTracker(alpha=0.5)
        tracker.add_listener(HotspotMetricsListener(registry))
        # A pile of co-stabbed intervals forms one dominant group -> promote.
        pile = [Interval(0.0, 10.0) for _ in range(12)]
        for interval in pile:
            tracker.insert(interval)
        counters = registry.snapshot()["counters"]
        assert counters["runtime/hotspot_promotions"] >= 1
        # Scatter the set and delete most of the pile -> the group falls
        # below (alpha/2) * n and is demoted.
        spread = [Interval(100.0 * i, 100.0 * i + 1.0) for i in range(1, 9)]
        for interval in spread:
            tracker.insert(interval)
        for interval in pile[:10]:
            tracker.delete(interval)
        counters = registry.snapshot()["counters"]
        assert counters["runtime/hotspot_demotions"] >= 1
        tracker.validate()

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        tracker = HotspotTracker(alpha=0.5)
        tracker.add_listener(HotspotMetricsListener(registry, prefix="shard/3"))
        for _ in range(8):
            tracker.insert(Interval(0.0, 1.0))
        assert registry.snapshot()["counters"]["shard/3/hotspot_promotions"] >= 1

    def test_direct_callbacks_symmetric(self):
        """Promotion and demotion are exposed symmetrically: each callback
        increments exactly its own counter, and the read properties mirror
        the registry values."""
        registry = MetricsRegistry()
        listener = HotspotMetricsListener(registry)
        group = object()  # callbacks must not depend on the group's type
        listener.on_promoted(group)
        listener.on_promoted(group)
        listener.on_demoted(group)
        counters = registry.snapshot()["counters"]
        assert counters["runtime/hotspot_promotions"] == 2
        assert counters["runtime/hotspot_demotions"] == 1
        assert listener.promotions == 2
        assert listener.demotions == 1

    def test_hot_item_churn_counted(self):
        registry = MetricsRegistry()
        listener = HotspotMetricsListener(registry, prefix="p")
        group = object()
        item = Interval(0.0, 1.0)
        listener.on_hot_item_added(group, item)
        listener.on_hot_item_added(group, item)
        listener.on_hot_item_added(group, item)
        listener.on_hot_item_removed(group, item)
        counters = registry.snapshot()["counters"]
        assert counters["p/hotspot_items_added"] == 3
        assert counters["p/hotspot_items_removed"] == 1
        assert listener.hot_items_added == 3
        assert listener.hot_items_removed == 1

    def test_tracker_hot_item_churn_flows_through(self):
        """Hot-item membership changes driven by a live tracker reach the
        listener's item counters, not just the promote/demote ones."""
        registry = MetricsRegistry()
        tracker = HotspotTracker(alpha=0.5)
        listener = HotspotMetricsListener(registry)
        tracker.add_listener(listener)
        pile = [Interval(0.0, 10.0) for _ in range(12)]
        for interval in pile:
            tracker.insert(interval)
        # Inserts after promotion land on a hot group; members present
        # before the promotion fired are not retroactively counted.
        assert 1 <= listener.hot_items_added <= len(pile)
        for interval in pile:
            tracker.delete(interval)
        assert listener.hot_items_removed >= 1
        tracker.validate()
