"""The strict-typing gate for the hot paths.

``mypy --strict`` must pass on repro.core, repro.dstruct, repro.fastpath,
repro.runtime, repro.analysis, repro.obs, repro.durability, repro.check,
and repro.bench (configuration in pyproject.toml — the relaxed override
loosens only ``disallow_untyped_calls`` for the packages that
deliberately call the not-yet-annotated engine/operator layer through an
``Any`` boundary).  mypy is a CI-only dependency; locally the mypy run
skips when it is not installed, and CI runs mypy directly as well.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

STRICT_PACKAGES = (
    "repro.core",
    "repro.dstruct",
    "repro.fastpath",
    "repro.runtime",
    "repro.analysis",
    "repro.obs",
    "repro.durability",
    "repro.check",
    "repro.bench",
)

#: Strict packages allowed to call into the unchecked engine/operator
#: layer (``disallow_untyped_calls = false``); everything else in the
#: gate must not grow such calls.
UNTYPED_CALL_CARVEOUT = (
    "repro.runtime.*",
    "repro.durability.*",
    "repro.check.*",
    "repro.bench.*",
)


def test_mypy_config_declares_the_gate():
    """Independent of mypy being installed: pyproject must keep the strict
    override covering every gated package (the table CI enforces)."""
    import tomllib

    config = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    overrides = config["tool"]["mypy"]["overrides"]
    strict = next(o for o in overrides if o.get("strict"))
    for pkg in STRICT_PACKAGES:
        assert f"{pkg}.*" in strict["module"], f"{pkg} fell out of the gate"
    relaxed = next(
        o for o in overrides if o.get("disallow_untyped_calls") is False
    )
    assert sorted(relaxed["module"]) == sorted(UNTYPED_CALL_CARVEOUT), (
        "only the declared packages may call the untyped engine/operator "
        "layer"
    )
    # The untyped-calls carve-out must stay a subset of the strict gate:
    # a module relaxed but not strict would silently be fully unchecked.
    for glob in UNTYPED_CALL_CARVEOUT:
        assert glob in strict["module"], glob
    # The shm transport (wire format + ring) must stay inside the strict
    # gate: none of the "unchecked" override globs may capture it, and the
    # same holds for the packages this gate just absorbed.
    import fnmatch

    unchecked = next(o for o in overrides if o.get("ignore_errors"))
    for mod in (
        "repro.runtime.transport.shm",
        "repro.runtime.transport.frames",
        "repro.runtime.transport.worker",
        "repro.durability.wal",
        "repro.durability.manager",
        "repro.check.runner",
        "repro.bench.batch_fastpath",
    ):
        assert any(fnmatch.fnmatch(mod, g) for g in strict["module"]), mod
        assert not any(fnmatch.fnmatch(mod, g) for g in unchecked["module"]), mod


def test_strict_packages_pass_mypy():
    pytest.importorskip("mypy", reason="mypy is installed in CI, not the dev image")
    args = [sys.executable, "-m", "mypy"]
    for pkg in STRICT_PACKAGES:
        args += ["-p", pkg]
    proc = subprocess.run(args, cwd=REPO_ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
