"""The strict-typing gate for the hot paths.

``mypy --strict`` must pass on repro.core, repro.dstruct, repro.fastpath,
repro.runtime, repro.analysis, and repro.obs (configuration in pyproject.toml — the
runtime override relaxes only ``disallow_untyped_calls``, since the
runtime deliberately calls the not-yet-annotated operator layer through an
``Any`` boundary).  mypy is a CI-only dependency; locally the mypy run
skips when it is not installed, and CI runs mypy directly as well.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

STRICT_PACKAGES = (
    "repro.core",
    "repro.dstruct",
    "repro.fastpath",
    "repro.runtime",
    "repro.analysis",
    "repro.obs",
)


def test_mypy_config_declares_the_gate():
    """Independent of mypy being installed: pyproject must keep the strict
    override covering every gated package (the table CI enforces)."""
    import tomllib

    config = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    overrides = config["tool"]["mypy"]["overrides"]
    strict = next(o for o in overrides if o.get("strict"))
    for pkg in STRICT_PACKAGES:
        assert f"{pkg}.*" in strict["module"], f"{pkg} fell out of the gate"
    relaxed = next(
        o for o in overrides if o.get("disallow_untyped_calls") is False
    )
    assert relaxed["module"] == ["repro.runtime.*"], (
        "only the runtime may call the untyped operator layer"
    )
    # The shm transport (wire format + ring) must stay inside the strict
    # gate: none of the "unchecked" override globs may capture it.
    import fnmatch

    unchecked = next(o for o in overrides if o.get("ignore_errors"))
    for mod in (
        "repro.runtime.transport.shm",
        "repro.runtime.transport.frames",
        "repro.runtime.transport.worker",
    ):
        assert any(fnmatch.fnmatch(mod, g) for g in strict["module"]), mod
        assert not any(fnmatch.fnmatch(mod, g) for g in unchecked["module"]), mod


def test_strict_packages_pass_mypy():
    pytest.importorskip("mypy", reason="mypy is installed in CI, not the dev image")
    args = [sys.executable, "-m", "mypy"]
    for pkg in STRICT_PACKAGES:
        args += ["-p", pkg]
    proc = subprocess.run(args, cwd=REPO_ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
