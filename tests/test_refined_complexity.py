"""Complexity-shaped tests for the refined (Appendix B) reconstruction.

Theorem 2's reconstruction stage examines groups, not intervals: the
number of SPLIT and JOIN tree operations per reconstruction is O(tau0),
independent of n.  These tests verify that with operation counters, which
is the property that makes the refined maintainer suitable for real-time
use.
"""

import random

from repro.core.intervals import Interval
from repro.core.refined_partition import RefinedStabbingPartition


def clustered_intervals(rng, count, anchors, spread=3.0):
    out = []
    for __ in range(count):
        anchor = rng.choice(anchors)
        out.append(
            Interval(
                anchor - abs(rng.normalvariate(spread, 1)) - 0.1,
                anchor + abs(rng.normalvariate(spread, 1)) + 0.1,
            )
        )
    return out


def test_reconstruction_ops_scale_with_groups_not_items():
    rng = random.Random(5)
    anchors = [100.0 * i for i in range(1, 13)]  # tau ~ 12

    ops_per_recon = {}
    for n in (500, 2_000, 8_000):
        partition = RefinedStabbingPartition(
            clustered_intervals(rng, n, anchors), epsilon=1.0, seed=6
        )
        partition.split_count = partition.join_count = 0
        recons_before = partition.reconstruction_count
        # Drive enough updates to force several reconstructions.
        extra = clustered_intervals(rng, 200, anchors)
        for interval in extra:
            partition.insert(interval)
        recons = partition.reconstruction_count - recons_before
        assert recons > 0
        ops_per_recon[n] = (partition.split_count + partition.join_count) / recons

    # 16x more items must not mean 16x more tree ops per reconstruction;
    # the op count tracks the group count (~12 + fresh singletons).
    assert ops_per_recon[8_000] < 4 * ops_per_recon[500]
    assert all(ops <= 400 for ops in ops_per_recon.values())


def test_fresh_singletons_absorbed_by_reconstruction():
    rng = random.Random(7)
    anchors = [50.0, 500.0]
    partition = RefinedStabbingPartition(
        clustered_intervals(rng, 300, anchors), epsilon=0.5, seed=8
    )
    assert len(partition) <= 3  # (1 + eps) * 2
    # A burst of inserts creates fresh singleton groups, then the update
    # budget forces a reconstruction that folds them back in.
    for interval in clustered_intervals(rng, 100, anchors):
        partition.insert(interval)
    assert len(partition) <= 3
    assert all(not group.fresh for group in partition.groups) or any(
        group.size > 1 for group in partition.groups
    )


def test_epsilon_controls_reconstruction_frequency():
    rng = random.Random(9)
    anchors = [100.0 * i for i in range(1, 9)]

    def recons_for(eps):
        partition = RefinedStabbingPartition(
            clustered_intervals(rng, 1_000, anchors), epsilon=eps, seed=10
        )
        before = partition.reconstruction_count
        for interval in clustered_intervals(random.Random(11), 300, anchors):
            partition.insert(interval)
        return partition.reconstruction_count - before

    assert recons_for(0.25) >= recons_for(4.0)
