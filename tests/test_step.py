"""Tests for the StepFunction value type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histogram.step import StepFunction


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            StepFunction((0.0,), ())  # empty
        with pytest.raises(ValueError):
            StepFunction((0.0, 1.0), (1.0, 2.0))  # boundary/value mismatch
        with pytest.raises(ValueError):
            StepFunction((1.0, 1.0), (5.0,))  # non-increasing boundaries

    def test_evaluation_right_open(self):
        f = StepFunction((0.0, 1.0, 2.0), (10.0, 20.0))
        assert f(0.0) == 10.0
        assert f(0.999) == 10.0
        assert f(1.0) == 20.0
        assert f(2.0) == 0.0  # outside: right-open support
        assert f(-0.1) == 0.0

    def test_support_and_piece_count(self):
        f = StepFunction((0.0, 1.0, 3.0), (1.0, 2.0))
        assert f.support == (0.0, 3.0)
        assert f.piece_count == 2


class TestSimplify:
    def test_merges_equal_adjacent(self):
        f = StepFunction((0.0, 1.0, 2.0, 3.0), (5.0, 5.0, 7.0)).simplified()
        assert f.boundaries == (0.0, 2.0, 3.0)
        assert f.values == (5.0, 7.0)

    def test_noop_when_distinct(self):
        f = StepFunction((0.0, 1.0, 2.0), (1.0, 2.0))
        assert f.simplified() == f


class TestSum:
    def test_sum_of_overlapping(self):
        a = StepFunction((0.0, 2.0), (1.0,))
        b = StepFunction((1.0, 3.0), (10.0,))
        total = StepFunction.sum_of([a, b])
        assert total(0.5) == 1.0
        assert total(1.5) == 11.0
        assert total(2.5) == 10.0

    def test_sum_of_empty_rejected(self):
        with pytest.raises(ValueError):
            StepFunction.sum_of([])

    @given(
        st.lists(
            st.tuples(
                st.integers(-20, 20), st.integers(1, 10), st.integers(-5, 5)
            ),
            min_size=1,
            max_size=6,
        ),
        st.integers(-30, 30),
    )
    @settings(max_examples=80)
    def test_sum_pointwise(self, specs, x):
        functions = [
            StepFunction((float(lo), float(lo + width)), (float(value),))
            for lo, width, value in specs
        ]
        total = StepFunction.sum_of(functions)
        # Probe off the boundary set (conventions at edges may differ).
        probe = x + 0.25
        assert total(probe) == pytest.approx(sum(f(probe) for f in functions))


class TestIntegrate:
    def test_integrate_full(self):
        f = StepFunction((0.0, 1.0, 3.0), (2.0, 5.0))
        area = f.integrate(lambda a, b, v: (b - a) * v)
        assert area == pytest.approx(2.0 + 10.0)

    def test_integrate_clipped(self):
        f = StepFunction((0.0, 10.0), (3.0,))
        area = f.integrate(lambda a, b, v: (b - a) * v, 2.0, 4.0)
        assert area == pytest.approx(6.0)

    def test_integrate_outside_support(self):
        f = StepFunction((0.0, 1.0), (3.0,))
        assert f.integrate(lambda a, b, v: (b - a) * v, 5.0, 6.0) == 0.0
