"""Tests for micro-batch coalescing."""

from repro.engine.events import DataEvent, EventKind
from repro.engine.table import RTuple, STuple
from repro.runtime.batching import BatchEntry, MicroBatcher
from repro.runtime.replay import StreamProfile, generate_mixed_stream, run_replay


def insert_r(seq, rid):
    return BatchEntry(seq, DataEvent(EventKind.INSERT, "R", RTuple(rid, 1.0, 2.0)))


def delete_r(seq, rid):
    return BatchEntry(seq, DataEvent(EventKind.DELETE, "R", RTuple(rid, 1.0, 2.0)))


def insert_s(seq, sid):
    return BatchEntry(seq, DataEvent(EventKind.INSERT, "S", STuple(sid, 1.0, 2.0)))


class TestCoalescing:
    def test_copending_insert_delete_pair_cancels(self):
        batcher = MicroBatcher(max_batch=16)
        batcher.add(insert_r(0, 7))
        batcher.add(insert_s(1, 3))
        batcher.add(delete_r(2, 7))
        batch = batcher.drain()
        assert [entry.seq for entry in batch] == [1]
        assert batcher.stats.coalesced_pairs == 1
        assert batcher.stats.cancelled == [(0, 2)]

    def test_survivor_order_is_preserved(self):
        batcher = MicroBatcher(max_batch=16)
        for seq in range(5):
            batcher.add(insert_r(seq, seq))
        batcher.add(delete_r(5, 2))
        batch = batcher.drain()
        assert [entry.seq for entry in batch] == [0, 1, 3, 4]

    def test_delete_without_pending_insert_survives(self):
        """A delete of a row inserted in an *earlier* batch must be applied."""
        batcher = MicroBatcher(max_batch=16)
        batcher.add(insert_r(0, 7))
        assert [e.seq for e in batcher.drain()] == [0]
        batcher.add(delete_r(1, 7))
        assert [e.seq for e in batcher.drain()] == [1]
        assert batcher.stats.coalesced_pairs == 0

    def test_same_id_different_relation_does_not_cancel(self):
        batcher = MicroBatcher(max_batch=16)
        batcher.add(insert_s(0, 7))
        batcher.add(delete_r(1, 7))  # rid 7 != sid 7
        assert [e.seq for e in batcher.drain()] == [0, 1]

    def test_coalesce_can_be_disabled(self):
        batcher = MicroBatcher(max_batch=16)
        batcher.add(insert_r(0, 7))
        batcher.add(delete_r(1, 7))
        assert [e.seq for e in batcher.drain(coalesce=False)] == [0, 1]

    def test_reinsert_after_cancelled_pair_survives(self):
        batcher = MicroBatcher(max_batch=16)
        batcher.add(insert_r(0, 7))
        batcher.add(delete_r(1, 7))
        batcher.add(insert_r(2, 7))  # same key re-inserted: must survive
        assert [e.seq for e in batcher.drain()] == [2]
        assert batcher.stats.coalesced_pairs == 1


class TestBatchLimits:
    def test_drain_respects_max_batch(self):
        batcher = MicroBatcher(max_batch=3)
        for seq in range(5):
            batcher.add(insert_r(seq, seq))
        assert batcher.is_due
        assert [e.seq for e in batcher.drain()] == [0, 1, 2]
        assert len(batcher) == 2
        assert [e.seq for e in batcher.drain()] == [3, 4]

    def test_drop_oldest(self):
        batcher = MicroBatcher(max_batch=8)
        for seq in range(3):
            batcher.add(insert_r(seq, seq))
        dropped = batcher.drop_oldest()
        assert dropped.seq == 0
        assert [e.seq for e in batcher.drain()] == [1, 2]


class TestBatchedDeltaEquivalence:
    def test_batched_equals_single_event_processing(self):
        """Coalescing must not change any visible per-event delta: a churn
        stream replayed at batch=16 matches the unsharded single-event
        reference on every non-cancelled event."""
        profile = StreamProfile(
            n_events=800,
            n_initial_queries=60,
            query_event_fraction=0.0,
            delete_fraction=0.35,
            churn=0.6,
            min_delete_age=32,
            recent_window=12,
            seed=5,
        )
        stream = generate_mixed_stream(profile)
        report = run_replay(stream, num_shards=3, batch_size=16)
        assert report.equivalent, report.summary()
        assert report.coalesced_pairs > 0
        assert report.compared == report.data_events - 2 * report.coalesced_pairs
