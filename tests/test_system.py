"""Tests for the ContinuousQuerySystem facade."""

import random

import pytest

from repro.core.intervals import Interval
from repro.engine.queries import BandJoinQuery, SelectJoinQuery
from repro.engine.system import ContinuousQuerySystem


class TestSubscriptions:
    def test_subscribe_both_types(self):
        system = ContinuousQuerySystem()
        band = system.subscribe(BandJoinQuery(Interval(-1, 1)))
        select = system.subscribe(SelectJoinQuery(Interval(0, 10), Interval(0, 10)))
        assert system.subscription_count == 2
        system.unsubscribe(band)
        system.unsubscribe(select)
        assert system.subscription_count == 0

    def test_unsupported_query_type(self):
        system = ContinuousQuerySystem()
        with pytest.raises(TypeError):
            system.subscribe("not a query")
        with pytest.raises(TypeError):
            system.unsubscribe(42)


class TestEventProcessing:
    def test_insert_r_returns_band_and_select_deltas(self):
        system = ContinuousQuerySystem(alpha=None)
        band = system.subscribe(BandJoinQuery(Interval(-0.5, 0.5)))
        select = system.subscribe(SelectJoinQuery(Interval(0, 100), Interval(0, 100)))
        system.insert_s(b=10.0, c=50.0)
        deltas = system.insert_r(a=5.0, b=10.0)
        assert band in deltas and select in deltas
        assert len(deltas[band]) == 1 and len(deltas[select]) == 1
        assert len(system.table_r) == 1

    def test_insert_s_symmetric(self):
        system = ContinuousQuerySystem(alpha=None)
        band = system.subscribe(BandJoinQuery(Interval(-0.5, 0.5)))
        system.insert_r(a=0.0, b=10.0)
        deltas = system.insert_s(b=10.2, c=0.0)
        assert band in deltas
        assert len(deltas[band]) == 1

    def test_insert_s_symmetric_with_hotspots(self):
        system = ContinuousQuerySystem(alpha=0.2)
        select = system.subscribe(SelectJoinQuery(Interval(0, 100), Interval(0, 100)))
        system.insert_r(a=5.0, b=7.0)
        deltas = system.insert_s(b=7.0, c=50.0)
        assert select in deltas

    def test_deltas_reflect_state_at_arrival(self):
        system = ContinuousQuerySystem(alpha=None)
        band = system.subscribe(BandJoinQuery(Interval(-0.5, 0.5)))
        # No S rows yet: the R arrival produces nothing.
        assert system.insert_r(a=0.0, b=10.0) == {}
        # Now the S arrival joins with the stored R row.
        assert band in system.insert_s(b=10.0, c=0.0)

    def test_callbacks_dispatched(self):
        system = ContinuousQuerySystem(alpha=None)
        notifications = []
        system.subscribe(
            BandJoinQuery(Interval(-0.5, 0.5)),
            on_results=lambda q, row, matches: notifications.append((q.qid, len(matches))),
        )
        system.insert_s(b=10.0, c=0.0)
        system.insert_r(a=0.0, b=10.0)
        assert notifications and notifications[0][1] == 1
        assert system.events_processed == 2
        assert system.results_produced == 1

    def test_deletions(self):
        system = ContinuousQuerySystem(alpha=None)
        band = system.subscribe(BandJoinQuery(Interval(-0.5, 0.5)))
        system.insert_s(b=10.0, c=0.0)
        s_row = next(iter(system.table_s))
        system.delete_s(s_row)
        assert system.insert_r(a=0.0, b=10.0) == {}
        r_row = next(iter(system.table_r))
        system.delete_r(r_row)
        assert len(system.table_r) == 0

    def test_deletions_count_as_processed_events(self):
        system = ContinuousQuerySystem(alpha=None)
        system.insert_s(b=10.0, c=0.0)
        system.insert_r(a=0.0, b=10.0)
        assert system.events_processed == 2
        system.delete_s(next(iter(system.table_s)))
        system.delete_r(next(iter(system.table_r)))
        # Deletions are applied events too, not just table maintenance.
        assert system.events_processed == 4

    def test_insert_row_applies_premade_rows(self):
        from repro.engine.table import RTuple, STuple

        system = ContinuousQuerySystem(alpha=None)
        band = system.subscribe(BandJoinQuery(Interval(-0.5, 0.5)))
        system.insert_s_row(STuple(41, 10.0, 0.0))
        deltas = system.insert_r_row(RTuple(7, 0.0, 10.0))
        assert [s.sid for s in deltas[band]] == [41]
        assert next(iter(system.table_r)).rid == 7


class TestHotspotVsPureConfigsAgree:
    def test_same_deltas(self):
        rng = random.Random(7)
        pure = ContinuousQuerySystem(alpha=None)
        hot = ContinuousQuerySystem(alpha=0.05)
        queries = []
        for __ in range(120):
            lo = rng.uniform(-5, 5)
            q1 = BandJoinQuery(Interval(lo, lo + rng.uniform(0, 2)))
            q2 = BandJoinQuery(Interval(lo, lo + q1.band.length))
            pure.subscribe(q1)
            hot.subscribe(q2)
            queries.append((q1, q2))
        for __ in range(60):
            b, c = rng.uniform(0, 100), rng.uniform(0, 100)
            pure.insert_s(b, c)
            hot.insert_s(b, c)
        for __ in range(25):
            a, b = rng.uniform(0, 100), rng.uniform(0, 100)
            d1 = pure.insert_r(a, b)
            d2 = hot.insert_r(a, b)
            got1 = sorted((q.qid, len(v)) for q, v in d1.items())
            # Map hot-system qids back through the pairing order.
            remap = {q2.qid: q1.qid for q1, q2 in queries}
            got2 = sorted((remap[q.qid], len(v)) for q, v in d2.items())
            assert got1 == got2
