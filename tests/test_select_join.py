"""Tests for the four select-join strategies against the brute-force oracle,
plus SJ-SSI probe specifics (coincident join points, duplicate keys)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.core.refined_partition import RefinedStabbingPartition
from repro.engine.queries import (
    SelectJoinQuery,
    brute_force_select_join,
    range_c_interval,
)
from repro.engine.table import TableR, TableS
from repro.operators.select_join import (
    SJJoinFirst,
    SJNaive,
    SJSelectFirst,
    SJSSI,
    make_select_strategies,
)

STRATEGY_CLASSES = [SJNaive, SJJoinFirst, SJSelectFirst, SJSSI]


def norm(results):
    return {
        query.qid: sorted(row.sid if hasattr(row, "sid") else row.rid for row in rows)
        for query, rows in results.items()
    }


def make_workload(seed, n_s=150, n_r=50, n_q=70, b_values=25, domain=100.0):
    """Integer join keys so equality joins actually occur."""
    rng = random.Random(seed)
    table_s = TableS(order=4)
    table_r = TableR(order=4)
    for __ in range(n_s):
        table_s.add(float(rng.randrange(b_values)), rng.uniform(0, domain))
    for __ in range(n_r):
        table_r.add(rng.uniform(0, domain), float(rng.randrange(b_values)))
    queries = []
    for __ in range(n_q):
        a_lo = rng.uniform(0, domain * 0.9)
        c_lo = rng.uniform(0, domain * 0.9)
        queries.append(
            SelectJoinQuery(
                Interval(a_lo, a_lo + rng.uniform(0, domain * 0.3)),
                Interval(c_lo, c_lo + rng.uniform(0, domain * 0.3)),
            )
        )
    return rng, table_s, table_r, queries


@pytest.mark.parametrize("cls", STRATEGY_CLASSES)
class TestAgainstOracle:
    def test_process_r_matches_bruteforce(self, cls):
        rng, table_s, table_r, queries = make_workload(seed=201)
        strategy = cls(table_s, table_r)
        for query in queries:
            strategy.add_query(query)
        for __ in range(30):
            r = table_r.new_row(rng.uniform(0, 100), float(rng.randrange(25)))
            assert norm(strategy.process_r(r)) == norm(
                brute_force_select_join(queries, r, table_s)
            )

    def test_process_s_matches_bruteforce(self, cls):
        rng, table_s, table_r, queries = make_workload(seed=202)
        strategy = cls(table_s, table_r)
        for query in queries:
            strategy.add_query(query)
        for __ in range(20):
            s = table_s.new_row(float(rng.randrange(25)), rng.uniform(0, 100))
            want = {
                q.qid: sorted(r.rid for r in table_r if q.matches(r, s))
                for q in queries
                if any(q.matches(r, s) for r in table_r)
            }
            assert norm(strategy.process_s(s)) == want

    def test_query_removal_respected(self, cls):
        rng, table_s, table_r, queries = make_workload(seed=203)
        strategy = cls(table_s, table_r)
        for query in queries:
            strategy.add_query(query)
        for query in queries[::3]:
            strategy.remove_query(query)
        kept = [q for i, q in enumerate(queries) if i % 3 != 0]
        r = table_r.new_row(50.0, 5.0)
        assert norm(strategy.process_r(r)) == norm(
            brute_force_select_join(kept, r, table_s)
        )

    def test_no_joining_tuples(self, cls):
        table_s = TableS()
        table_s.add(1.0, 50.0)
        strategy = cls(table_s)
        strategy.add_query(SelectJoinQuery(Interval(0, 100), Interval(0, 100)))
        r = strategy.table_r.new_row(50.0, 99.0)  # no s with b == 99
        assert strategy.process_r(r) == {}

    def test_duplicate_query_id_rejected(self, cls):
        strategy = cls(TableS())
        query = SelectJoinQuery(Interval(0, 1), Interval(0, 1))
        strategy.add_query(query)
        with pytest.raises(ValueError):
            strategy.add_query(query)


class TestSJSSISpecifics:
    def test_stabbing_point_coincides_with_join_tuple(self):
        table_s = TableS(order=4)
        # One C value exactly at what will be the group's stabbing point.
        query = SelectJoinQuery(Interval(0, 100), Interval(10.0, 20.0))
        strategy = SJSSI(table_s)
        strategy.add_query(query)
        point = next(iter(strategy.ssi.groups()))[0]
        s = table_s.add(5.0, point)
        got = norm(strategy.process_r(strategy.table_r.new_row(50.0, 5.0)))
        assert got == {query.qid: [s.sid]}

    def test_duplicate_c_values_counted_once_each(self):
        table_s = TableS(order=4)
        rows = [table_s.add(5.0, 15.0) for __ in range(6)]
        strategy = SJSSI(table_s)
        query = SelectJoinQuery(Interval(0, 100), Interval(10.0, 20.0))
        strategy.add_query(query)
        got = norm(strategy.process_r(strategy.table_r.new_row(50.0, 5.0)))
        assert got == {query.qid: sorted(r.sid for r in rows)}

    def test_rectangle_in_gap_not_reported(self):
        # Query whose rangeC falls strictly between two S.C values: affected
        # by neither join result point, must not be reported (Figure 5 gap).
        table_s = TableS(order=4)
        table_s.add(5.0, 10.0)
        table_s.add(5.0, 30.0)
        strategy = SJSSI(table_s)
        gap_query = SelectJoinQuery(Interval(0, 100), Interval(15.0, 25.0))
        strategy.add_query(gap_query)
        assert strategy.process_r(strategy.table_r.new_row(50.0, 5.0)) == {}

    def test_asymmetric_constructor_rejects_process_s(self):
        strategy = SJSSI(TableS(), symmetric=False)
        strategy.add_query(SelectJoinQuery(Interval(0, 1), Interval(0, 1)))
        with pytest.raises(RuntimeError):
            strategy.process_s(strategy.table_s.new_row(0.0, 0.0))

    def test_refined_partition_backend(self):
        rng, table_s, table_r, queries = make_workload(seed=204)
        partition = RefinedStabbingPartition(
            epsilon=1.0, interval_of=range_c_interval, seed=5
        )
        strategy = SJSSI(table_s, table_r, partition_c=partition, symmetric=False)
        for query in queries:
            strategy.add_query(query)
        r = table_r.new_row(rng.uniform(0, 100), float(rng.randrange(25)))
        assert norm(strategy.process_r(r)) == norm(
            brute_force_select_join(queries, r, table_s)
        )


@given(st.integers(0, 10_000), st.integers(1, 40), st.integers(0, 60))
@settings(max_examples=25, deadline=None)
def test_all_strategies_agree_randomized(seed, n_q, n_s):
    rng = random.Random(seed)
    table_s = TableS(order=4)
    table_r = TableR(order=4)
    for __ in range(n_s):
        table_s.add(float(rng.randrange(8)), float(rng.randrange(0, 40)))
    queries = []
    for __ in range(n_q):
        a_lo = float(rng.randrange(0, 35))
        c_lo = float(rng.randrange(0, 35))
        queries.append(
            SelectJoinQuery(
                Interval(a_lo, a_lo + rng.randrange(0, 15)),
                Interval(c_lo, c_lo + rng.randrange(0, 15)),
            )
        )
    strategies = make_select_strategies(table_s, table_r)
    for strategy in strategies.values():
        for query in queries:
            strategy.add_query(query)
    for __ in range(5):
        r = table_r.new_row(float(rng.randrange(0, 40)), float(rng.randrange(8)))
        want = norm(brute_force_select_join(queries, r, table_s))
        for name, strategy in strategies.items():
            assert norm(strategy.process_r(r)) == want, name


def test_maintenance_under_mixed_stream():
    rng = random.Random(17)
    table_s = TableS(order=4)
    for __ in range(120):
        table_s.add(float(rng.randrange(10)), rng.uniform(0, 60))
    strategies = make_select_strategies(table_s)
    live = []
    for step in range(250):
        if live and rng.random() < 0.45:
            query = live.pop(rng.randrange(len(live)))
            for strategy in strategies.values():
                strategy.remove_query(query)
        else:
            a_lo = rng.uniform(0, 50)
            c_lo = rng.uniform(0, 50)
            query = SelectJoinQuery(
                Interval(a_lo, a_lo + rng.uniform(0, 15)),
                Interval(c_lo, c_lo + rng.uniform(0, 15)),
            )
            live.append(query)
            for strategy in strategies.values():
                strategy.add_query(query)
        if step % 50 == 49:
            r = TableR().new_row(rng.uniform(0, 60), float(rng.randrange(10)))
            want = norm(brute_force_select_join(live, r, table_s))
            for name, strategy in strategies.items():
                assert norm(strategy.process_r(r)) == want, name
