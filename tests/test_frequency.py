"""Tests for the interval stabbing-count function f_I and densities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.histogram.frequency import Density, IntervalFrequency, segment_weights

from conftest import int_interval_strategy


class TestCount:
    def test_basic(self):
        freq = IntervalFrequency([Interval(0, 10), Interval(5, 15)])
        assert freq.count(-1) == 0
        assert freq.count(0) == 1
        assert freq.count(7) == 2
        assert freq.count(15) == 1
        assert freq.count(16) == 0

    def test_closed_endpoints(self):
        freq = IntervalFrequency([Interval(3, 5)])
        assert freq.count(3) == 1
        assert freq.count(5) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IntervalFrequency([])

    def test_domain(self):
        freq = IntervalFrequency([Interval(2, 3), Interval(-5, 1)])
        assert freq.domain == (-5.0, 3.0)

    @given(
        st.lists(int_interval_strategy(), min_size=1, max_size=50),
        st.lists(st.integers(-60, 60), min_size=1, max_size=20),
    )
    @settings(max_examples=80)
    def test_count_matches_bruteforce(self, intervals, probes):
        freq = IntervalFrequency(intervals)
        for x in probes:
            assert freq.count(x) == sum(1 for iv in intervals if iv.contains(x))


class TestStepFunction:
    def test_step_matches_count_at_midpoints(self):
        intervals = [Interval(0, 10), Interval(5, 15), Interval(5, 8)]
        freq = IntervalFrequency(intervals)
        f = freq.step_function()
        for a, b in zip(f.boundaries, f.boundaries[1:]):
            mid = (a + b) / 2
            assert f(mid) == freq.count(mid)

    def test_restricted_domain(self):
        freq = IntervalFrequency([Interval(0, 10), Interval(5, 15)])
        f = freq.step_function(4, 12)
        assert f.support == (4.0, 12.0)
        assert f(4.5) == 1
        assert f(6.0) == 2

    def test_invalid_restriction(self):
        freq = IntervalFrequency([Interval(0, 10)])
        with pytest.raises(ValueError):
            freq.step_function(5, 5)

    @given(st.lists(int_interval_strategy(), min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_step_equals_count_everywhere_off_breakpoints(self, intervals):
        freq = IntervalFrequency(intervals)
        lo, hi = freq.domain
        if lo == hi:
            return
        f = freq.step_function()
        for i in range(10):
            x = lo + (hi - lo) * (i + 0.37) / 10.0
            if x in set(freq.breakpoints()):
                continue
            assert f(x) == freq.count(x)

    def test_breakpoints_filtering(self):
        freq = IntervalFrequency([Interval(0, 10), Interval(5, 15)])
        assert freq.breakpoints() == [0, 5, 10, 15]
        assert freq.breakpoints(lo=4, hi=11) == [5, 10]


class TestDensity:
    def test_uniform_mass(self):
        phi = Density(0.0, 10.0)
        assert phi.mass(0, 10) == pytest.approx(1.0)
        assert phi.mass(0, 5) == pytest.approx(0.5)
        assert phi.mass(-5, 5) == pytest.approx(0.5)  # clipped
        assert phi.mass(20, 30) == 0.0

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            Density(1.0, 1.0)

    def test_uniform_over_frequency(self):
        freq = IntervalFrequency([Interval(2, 8)])
        phi = Density.uniform_over(freq)
        assert (phi.lo, phi.hi) == (2.0, 8.0)

    def test_segment_weights(self):
        phi = Density(0.0, 10.0)
        weights = segment_weights([0.0, 2.0, 10.0], phi)
        assert weights == pytest.approx([0.2, 0.8])
