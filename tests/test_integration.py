"""End-to-end integration tests: generated workloads driven through the
full stack (tables + queries + every strategy + hotspot processors),
cross-validated on both arrival directions and under data-table updates."""

import random

import pytest

from repro.engine import TableR, TableS, brute_force_band_join, brute_force_select_join
from repro.operators import (
    HotspotBandJoinProcessor,
    HotspotSelectJoinProcessor,
    make_band_strategies,
    make_select_strategies,
)
from repro.workload import (
    WorkloadParams,
    ZipfSampler,
    make_band_join_queries,
    make_select_join_queries,
    make_tables,
    r_insert_events,
    spread_anchors,
)

PARAMS = WorkloadParams(
    seed=99,
    table_size=400,
    query_count=300,
    join_key_grid=20,
    range_c_len_mean=300.0,
    range_c_len_sigma=80.0,
    band_len_mean=150.0,
    band_len_sigma=40.0,
)


def norm(results):
    return {
        q.qid: sorted(row.sid if hasattr(row, "sid") else row.rid for row in rows)
        for q, rows in results.items()
    }


class TestGeneratedSelectJoinWorkload:
    @pytest.fixture(scope="class")
    def setup(self):
        table_r, table_s = make_tables(PARAMS)
        anchors = spread_anchors(PARAMS, 8)
        sampler = ZipfSampler(8, 1.0)
        queries = make_select_join_queries(
            PARAMS, range_c_anchors=anchors, anchor_sampler=sampler
        )
        strategies = make_select_strategies(table_s, table_r)
        hotspot = HotspotSelectJoinProcessor(table_s, table_r, alpha=0.02)
        for query in queries:
            hotspot.add_query(query)
            for strategy in strategies.values():
                strategy.add_query(query)
        return table_r, table_s, queries, strategies, hotspot

    def test_all_processors_agree_with_oracle(self, setup):
        table_r, table_s, queries, strategies, hotspot = setup
        rng = random.Random(1)
        for a, b in r_insert_events(PARAMS, 15, rng):
            r = table_r.new_row(a, b)
            want = norm(brute_force_select_join(queries, r, table_s))
            for name, strategy in strategies.items():
                assert norm(strategy.process_r(r)) == want, name
            assert norm(hotspot.process_r(r)) == want

    def test_symmetric_direction_agrees(self, setup):
        table_r, table_s, queries, strategies, hotspot = setup
        rng = random.Random(2)
        for __ in range(8):
            s = table_s.new_row(float(rng.randrange(20)) * 500.0, rng.uniform(0, 10_000))
            want = {
                q.qid: sorted(r.rid for r in table_r if q.matches(r, s))
                for q in queries
                if any(q.matches(r, s) for r in table_r)
            }
            for name, strategy in strategies.items():
                assert norm(strategy.process_s(s)) == want, name

    def test_reflects_data_table_updates(self, setup):
        table_r, table_s, queries, strategies, hotspot = setup
        rng = random.Random(3)
        # Insert fresh S rows and delete a few existing ones; processors
        # must see the new table state immediately (they index S directly).
        added = [table_s.add(float(rng.randrange(20)) * 500.0, rng.uniform(0, 10_000)) for __ in range(30)]
        victims = [row for i, row in enumerate(list(table_s)) if i % 37 == 0 and row not in added][:20]
        for row in victims:
            table_s.delete(row)
        r = table_r.new_row(5_000.0, added[0].b)
        want = norm(brute_force_select_join(queries, r, table_s))
        for name, strategy in strategies.items():
            assert norm(strategy.process_r(r)) == want, name
        assert norm(hotspot.process_r(r)) == want


class TestGeneratedBandJoinWorkload:
    @pytest.fixture(scope="class")
    def setup(self):
        table_r, table_s = make_tables(PARAMS)
        queries = make_band_join_queries(
            PARAMS, band_anchors=[-2_000.0, 0.0, 2_000.0]
        )
        strategies = make_band_strategies(table_s, table_r)
        hotspot = HotspotBandJoinProcessor(table_s, table_r, alpha=0.02)
        for query in queries:
            hotspot.add_query(query)
            for strategy in strategies.values():
                strategy.add_query(query)
        return table_r, table_s, queries, strategies, hotspot

    def test_all_processors_agree_with_oracle(self, setup):
        table_r, table_s, queries, strategies, hotspot = setup
        rng = random.Random(4)
        for a, b in r_insert_events(PARAMS, 15, rng):
            r = table_r.new_row(a, b)
            want = norm(brute_force_band_join(queries, r, table_s))
            for name, strategy in strategies.items():
                assert norm(strategy.process_r(r)) == want, name
            assert norm(hotspot.process_r(r)) == want

    def test_query_churn_then_agreement(self, setup):
        table_r, table_s, queries, strategies, hotspot = setup
        rng = random.Random(5)
        live = list(queries)
        extra = make_band_join_queries(PARAMS, 80, rng=random.Random(6))
        for query in extra:
            live.append(query)
            hotspot.add_query(query)
            for strategy in strategies.values():
                strategy.add_query(query)
        for __ in range(100):
            victim = live.pop(rng.randrange(len(live)))
            hotspot.remove_query(victim)
            for strategy in strategies.values():
                strategy.remove_query(victim)
        hotspot.validate()
        r = table_r.new_row(0.0, rng.uniform(0, 10_000))
        want = norm(brute_force_band_join(live, r, table_s))
        for name, strategy in strategies.items():
            assert norm(strategy.process_r(r)) == want, name
        assert norm(hotspot.process_r(r)) == want


def test_full_pipeline_smoke():
    """The quickstart path: generate, subscribe, stream, and check counts."""
    params = WorkloadParams(seed=123, table_size=200, query_count=100, join_key_grid=10)
    table_r, table_s = make_tables(params)
    strategies = make_select_strategies(table_s, table_r)
    queries = make_select_join_queries(params)
    for strategy in strategies.values():
        for query in queries:
            strategy.add_query(query)
    total = {name: 0 for name in strategies}
    for a, b in r_insert_events(params, 10):
        r = table_r.new_row(a, b)
        for name, strategy in strategies.items():
            total[name] += sum(len(v) for v in strategy.process_r(r).values())
    assert len(set(total.values())) == 1, f"result counts diverged: {total}"
