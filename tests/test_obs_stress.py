"""Concurrency stress tests: MetricsRegistry instruments and the span ring
buffer under many writers with live snapshot readers — exact final counts,
no torn reads, every snapshot internally consistent."""

import threading

from repro.obs.tracing import RingTracer
from repro.runtime.metrics import MetricsRegistry

N_THREADS = 8
PER_THREAD = 2_000


def run_threads(n, fn):
    barrier = threading.Barrier(n)

    def work(worker):
        barrier.wait()
        fn(worker)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return threads


class TestRegistryStress:
    def test_exact_totals_with_concurrent_readers(self):
        registry = MetricsRegistry()
        counter = registry.counter("stress/events")
        histogram = registry.histogram("stress/lat")
        constant = 3.0  # constant observations make torn reads detectable
        stop = threading.Event()
        torn = []

        def read_forever():
            while not stop.is_set():
                snap = registry.snapshot()
                hist = snap["histograms"]["stress/lat"]
                # sum must always equal count * constant — a mismatch means
                # a reader saw count and sum from different moments or a
                # writer updated them non-atomically.
                if hist["sum"] != hist["count"] * constant:
                    torn.append(hist)
                    return

        readers = [threading.Thread(target=read_forever) for _ in range(2)]
        for r in readers:
            r.start()
        try:
            run_threads(
                N_THREADS,
                lambda worker: [
                    (counter.inc(), histogram.observe(constant))
                    for _ in range(PER_THREAD)
                ],
            )
        finally:
            stop.set()
            for r in readers:
                r.join()
        assert torn == []
        total = N_THREADS * PER_THREAD
        assert counter.value == total
        final = registry.snapshot()["histograms"]["stress/lat"]
        assert final["count"] == total
        assert final["sum"] == total * constant

    def test_concurrent_instrument_creation_single_instance(self):
        registry = MetricsRegistry()
        created = []
        lock = threading.Lock()

        def create(worker):
            h = registry.histogram("shared/h")
            with lock:
                created.append(h)
            h.observe(1.0)

        run_threads(16, create)
        assert all(h is created[0] for h in created)
        assert registry.snapshot()["histograms"]["shared/h"]["count"] == 16


class TestRingTracerStress:
    def test_exact_counts_and_consistent_snapshots(self):
        capacity = 1_024
        tracer = RingTracer(capacity=capacity)
        per_thread = 1_500  # N_THREADS * per_thread > capacity: forces wrap
        expected_names = {f"w{i}" for i in range(N_THREADS)}
        stop = threading.Event()
        bad = []

        def read_forever():
            while not stop.is_set():
                for record in tracer.snapshot():
                    # Records must always be fully formed — a name outside
                    # the writer set or negative duration means a torn read.
                    if record.name not in expected_names or record.dur_ns < 0:
                        bad.append(record)
                        return

        readers = [threading.Thread(target=read_forever) for _ in range(2)]
        for r in readers:
            r.start()
        try:
            def write(worker):
                for _ in range(per_thread):
                    with tracer.span(f"w{worker}", worker=worker):
                        pass

            run_threads(N_THREADS, write)
        finally:
            stop.set()
            for r in readers:
                r.join()
        assert bad == []
        total = N_THREADS * per_thread
        assert tracer.recorded == total
        assert tracer.dropped == total - capacity
        retained = tracer.snapshot()
        assert len(retained) == capacity
        # Per-writer accounting: retained + dropped spans cover every write.
        assert all(record.name in expected_names for record in retained)

    def test_wraparound_keeps_newest_under_concurrency(self):
        tracer = RingTracer(capacity=64)

        def write(worker):
            for i in range(200):
                with tracer.span(f"w{worker}", i=i):
                    pass

        run_threads(4, write)
        retained = tracer.snapshot()
        assert len(retained) == 64
        assert tracer.recorded == 800
        assert tracer.dropped == 800 - 64
        # The snapshot is the newest spans: every retained per-worker index
        # must be from the tail of that worker's sequence.
        by_worker = {}
        for record in retained:
            by_worker.setdefault(record.name, []).append(record.args["i"])
        for indices in by_worker.values():
            assert min(indices) >= 200 - 64 - 1
