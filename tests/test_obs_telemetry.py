"""Tests for hotspot telemetry: churn listeners, reconstruction timing,
I2 headroom sampling, and the per-shard bundle."""

import random

from repro.core.hotspot_tracker import HotspotTracker
from repro.core.intervals import Interval
from repro.core.lazy_partition import LazyStabbingPartition
from repro.obs.hotspot_telemetry import (
    HotspotChurnTelemetry,
    HotspotTelemetry,
    ReconstructionTelemetry,
    hotspot_headroom,
)
from repro.obs.tracing import RingTracer
from repro.runtime.metrics import MetricsRegistry


def pile(n, lo=0.0, hi=10.0):
    return [Interval(lo, hi) for _ in range(n)]


def spread(n, start=1):
    return [Interval(100.0 * i, 100.0 * i + 1.0) for i in range(start, start + n)]


class TestChurnTelemetry:
    def test_counts_promotions_demotions_and_item_traffic(self):
        registry = MetricsRegistry()
        tracker = HotspotTracker(alpha=0.5)
        tracker.add_listener(HotspotChurnTelemetry(registry, "t/band"))
        hot = pile(12)
        for interval in hot:
            tracker.insert(interval)
        counters = registry.snapshot()["counters"]
        assert counters["obs/t/band/promotions"] >= 1
        assert counters["obs/t/band/hot_items_added"] >= 1
        for interval in spread(8):
            tracker.insert(interval)
        for interval in hot[:10]:
            tracker.delete(interval)
        counters = registry.snapshot()["counters"]
        assert counters["obs/t/band/demotions"] >= 1
        assert counters["obs/t/band/hot_items_removed"] >= 1
        tracker.validate()

    def test_promoted_group_size_observed(self):
        registry = MetricsRegistry()
        tracker = HotspotTracker(alpha=0.5)
        tracker.add_listener(HotspotChurnTelemetry(registry, "t"))
        for interval in pile(12):
            tracker.insert(interval)
        hist = registry.snapshot()["histograms"]["obs/t/promoted_group_size"]
        assert hist["count"] >= 1
        assert hist["max"] >= 1


class TestReconstructionTelemetry:
    def drive_rebuilds(self, partition, rng, rounds=200):
        """Churn inserts/deletes until the partition reconstructs."""
        live = []
        for i in range(rounds):
            if live and rng.random() < 0.6:
                live.remove(victim := rng.choice(live))
                partition.delete(victim)
            else:
                lo = rng.uniform(0, 100)
                interval = Interval(lo, lo + rng.uniform(0.1, 30))
                live.append(interval)
                partition.insert(interval)
            if partition.reconstruction_count >= 2:
                break
        return partition.reconstruction_count

    def test_rebuilds_land_in_histogram_and_trace(self):
        registry = MetricsRegistry()
        tracer = RingTracer(capacity=64)
        # The simple trigger rebuilds on an update-count schedule, so a
        # modest churn run reliably reconstructs at least once.
        partition = LazyStabbingPartition(
            [Interval(float(i), float(i) + 5.0) for i in range(10)],
            epsilon=0.5,
            trigger="simple",
        )
        partition.add_listener(ReconstructionTelemetry(registry, "t", tracer))
        rebuilds = self.drive_rebuilds(partition, random.Random(7))
        assert rebuilds >= 1
        snap = registry.snapshot()
        assert snap["counters"]["obs/t/reconstructions"] == rebuilds
        hist = snap["histograms"]["obs/t/reconstruction_us"]
        assert hist["count"] == rebuilds
        spans = [r for r in tracer.snapshot() if r.name == "partition.rebuild"]
        assert len(spans) == rebuilds
        assert all(r.args["plane"] == "t" for r in spans)
        partition.validate()

    def test_rebuilt_without_start_marker_is_noop(self):
        registry = MetricsRegistry()
        telemetry = ReconstructionTelemetry(registry, "t")
        partition = LazyStabbingPartition([Interval(0, 1)])
        telemetry.on_rebuilt(partition)  # e.g. an initial install
        snap = registry.snapshot()
        assert snap["counters"]["obs/t/reconstructions"] == 0
        assert snap["histograms"]["obs/t/reconstruction_us"]["count"] == 0

    def test_item_callbacks_are_inert(self):
        registry = MetricsRegistry()
        telemetry = ReconstructionTelemetry(registry, "t")
        partition = LazyStabbingPartition()
        partition.add_listener(telemetry)
        interval = Interval(0, 1)
        partition.insert(interval)
        partition.delete(interval)
        assert registry.snapshot()["counters"]["obs/t/reconstructions"] == 0


class TestHeadroom:
    def test_invariant_budget_holds_under_churn(self):
        rng = random.Random(3)
        tracker = HotspotTracker(alpha=0.1, epsilon=0.5)
        live = []
        for _ in range(300):
            if live and rng.random() < 0.35:
                live.remove(victim := rng.choice(live))
                tracker.delete(victim)
            else:
                lo = rng.uniform(0, 50)
                interval = Interval(lo, lo + rng.uniform(0.1, 10))
                live.append(interval)
                tracker.insert(interval)
        sample = hotspot_headroom(tracker, plane="p")
        assert sample.plane == "p"
        assert sample.items == len(live)
        assert sample.groups == sample.hot_groups + sample.scattered_groups
        assert sample.headroom >= 0.0  # I2: groups <= (1+eps)*tau + 2/alpha
        assert 0.0 <= sample.coverage <= 1.0
        tracker.validate()

    def test_empty_tracker(self):
        sample = hotspot_headroom(HotspotTracker(alpha=0.5))
        assert sample.items == 0 and sample.groups == 0 and sample.tau == 0


class TestHotspotTelemetryBundle:
    def test_attach_and_sample_publishes_gauges(self):
        registry = MetricsRegistry()
        telemetry = HotspotTelemetry(registry)
        tracker = HotspotTracker(alpha=0.5)
        telemetry.attach(tracker, "shard/0/band")
        for interval in pile(12):
            tracker.insert(interval)
        samples = telemetry.sample()
        assert [s.plane for s in samples] == ["shard/0/band"]
        gauges = registry.snapshot()["gauges"]
        assert gauges["obs/shard/0/band/groups"] == samples[0].groups
        assert gauges["obs/shard/0/band/tau"] == samples[0].tau
        assert gauges["obs/shard/0/band/headroom"] == samples[0].headroom
        assert gauges["obs/shard/0/band/hotspot_coverage"] == samples[0].coverage
        # Churn flowed through the bundled listener too.
        assert registry.snapshot()["counters"]["obs/shard/0/band/promotions"] >= 1

    def test_sample_tracks_multiple_planes(self):
        registry = MetricsRegistry()
        telemetry = HotspotTelemetry(registry)
        band, select = HotspotTracker(alpha=0.5), HotspotTracker(alpha=0.5)
        telemetry.attach(band, "s/band")
        telemetry.attach(select, "s/select")
        band.insert(Interval(0, 1))
        assert [s.plane for s in telemetry.sample()] == ["s/band", "s/select"]


class TestRuntimeWiring:
    def test_pipeline_sample_hotspots_inline(self):
        from repro.engine.events import DataEvent, EventKind
        from repro.engine.queries import BandJoinQuery
        from repro.engine.events import QueryEvent
        from repro.runtime.pipeline import EventPipeline

        pipeline = EventPipeline(num_shards=2, alpha=0.2, batch_size=8)
        try:
            for i in range(6):
                pipeline.submit(QueryEvent(EventKind.INSERT, BandJoinQuery(Interval(0.0, 1.0))))
            pipeline.drain()
            samples = pipeline.sample_hotspots()
        finally:
            pipeline.close()
        planes = {s.plane for s in samples}
        assert planes == {
            "shard/0/band", "shard/0/select", "shard/1/band", "shard/1/select",
        }
        assert all(s.headroom >= 0.0 for s in samples)
