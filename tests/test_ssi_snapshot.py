"""Tests for the SSI's dense group-table snapshot: the cached parallel
(points, structures) arrays the batch fast path iterates must always agree
with the live partition, and every mutation path must invalidate them."""

import random

from repro.core.intervals import Interval
from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.refined_partition import RefinedStabbingPartition
from repro.core.ssi import StabbingSetIndex


def make_ssi(partition):
    return StabbingSetIndex(
        partition,
        make_structure=set,
        add_item=lambda s, item: s.add(item),
        remove_item=lambda s, item: s.discard(item),
    )


def assert_snapshot_synchronized(ssi):
    points, structures = ssi.group_table()
    assert len(points) == len(structures) == ssi.group_count()
    live = {group.stabbing_point: ssi.structure_of(group) for group in ssi.partition.groups}
    assert len(live) == len(points), "duplicate stabbing points in group table"
    for point, structure in zip(points, structures):
        assert live[point] is structure, "snapshot structure is not the live one"


class TestGroupTableCache:
    def test_snapshot_matches_groups_iteration(self):
        partition = LazyStabbingPartition([Interval(0, 10), Interval(20, 30)])
        ssi = make_ssi(partition)
        points, structures = ssi.group_table()
        assert list(zip(points, structures)) == list(ssi.groups())
        assert_snapshot_synchronized(ssi)

    def test_snapshot_is_cached_until_mutation(self):
        partition = LazyStabbingPartition([Interval(0, 10), Interval(20, 30)])
        ssi = make_ssi(partition)
        first = ssi.group_table()
        builds = ssi.snapshot_builds
        assert ssi.group_table() is first
        assert ssi.snapshot_builds == builds  # pure reads never rebuild
        for __ in ssi.groups():
            pass
        assert ssi.snapshot_builds == builds

    def test_insert_invalidates(self):
        partition = LazyStabbingPartition(epsilon=100.0)
        ssi = make_ssi(partition)
        a = Interval(0, 10)
        ssi.insert(a)
        before = ssi.group_table()
        # A disjoint interval forces a new group; same-group inserts only
        # mutate an existing structure but must still refresh the table.
        b = Interval(50, 60)
        ssi.insert(b)
        after = ssi.group_table()
        assert after is not before
        assert len(after[0]) == 2
        assert_snapshot_synchronized(ssi)

    def test_delete_invalidates(self):
        partition = LazyStabbingPartition(epsilon=100.0)
        ssi = make_ssi(partition)
        a, b = Interval(0, 10), Interval(50, 60)
        ssi.insert(a)
        ssi.insert(b)
        before = ssi.group_table()
        ssi.delete(b)
        after = ssi.group_table()
        assert after is not before
        assert len(after[0]) == 1
        assert_snapshot_synchronized(ssi)

    def test_same_group_insert_invalidates(self):
        partition = LazyStabbingPartition(epsilon=100.0)
        ssi = make_ssi(partition)
        a, b = Interval(0, 10), Interval(5, 15)
        ssi.insert(a)
        points, structures = ssi.group_table()
        assert len(points) == 1
        ssi.insert(b)  # joins the existing group: on_item_added only
        assert b in ssi.group_table()[1][0]
        assert_snapshot_synchronized(ssi)

    def test_stale_snapshot_impossible_after_rebuild(self):
        """Regression: reconstruction replaces every group object; a snapshot
        surviving on_rebuilt would hand the batch path dead structures."""
        rng = random.Random(4)
        partition = LazyStabbingPartition(epsilon=0.5, trigger="simple")
        ssi = make_ssi(partition)
        live = []
        rebuilds_seen = 0
        for step in range(300):
            lo = rng.uniform(0, 100)
            interval = Interval(lo, lo + rng.uniform(0, 10))
            ssi.insert(interval)
            live.append(interval)
            if rng.random() < 0.4:
                ssi.delete(live.pop(rng.randrange(len(live))))
            if ssi.rebuild_count > rebuilds_seen:
                rebuilds_seen = ssi.rebuild_count
                assert_snapshot_synchronized(ssi)
            if step % 7 == 0:
                assert_snapshot_synchronized(ssi)
        assert rebuilds_seen > 0, "sweep never triggered a reconstruction"

    def test_refined_partition_rotations_keep_snapshot_fresh(self):
        rng = random.Random(5)
        partition = RefinedStabbingPartition(epsilon=1.0, seed=6)
        ssi = make_ssi(partition)
        live = []
        for step in range(200):
            lo = rng.uniform(0, 100)
            interval = Interval(lo, lo + rng.uniform(0, 10))
            ssi.insert(interval)
            live.append(interval)
            if rng.random() < 0.4:
                ssi.delete(live.pop(rng.randrange(len(live))))
            if step % 5 == 0:
                assert_snapshot_synchronized(ssi)
        assert ssi.rebuild_count > 0
