"""Tests for the hotspot tracker (Theorem 1): invariants I1-I3, promote/
demote hysteresis, listener callbacks."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hotspot_tracker import HotspotTracker
from repro.core.intervals import Interval
from repro.core.refined_partition import RefinedStabbingPartition

from conftest import fresh_intervals, int_interval_strategy


class RecordingHotspotListener:
    def __init__(self):
        self.promoted = []
        self.demoted = []
        self.hot_added = []
        self.hot_removed = []

    def on_promoted(self, group):
        self.promoted.append(group)

    def on_demoted(self, group):
        self.demoted.append(group)

    def on_hot_item_added(self, group, item):
        self.hot_added.append(item)

    def on_hot_item_removed(self, group, item):
        self.hot_removed.append(item)


class TestBasics:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            HotspotTracker(alpha=0.0)
        with pytest.raises(ValueError):
            HotspotTracker(alpha=1.5)

    def test_clustered_items_promote(self):
        tracker = HotspotTracker(alpha=0.3)
        items = [Interval(0.0, 10.0) for __ in range(10)]
        for item in items:
            tracker.insert(item)
        tracker.validate()
        assert tracker.hotspot_coverage == 1.0
        assert len(tracker.hotspot_groups) == 1
        assert all(tracker.is_hotspot_item(item) for item in items)

    def test_scattered_items_stay_scattered(self):
        tracker = HotspotTracker(alpha=0.3)
        for i in range(10):
            tracker.insert(Interval(i * 100.0, i * 100.0 + 1))
        tracker.validate()
        # No point is contained in >= 30% of these disjoint intervals.
        assert tracker.hotspot_item_count <= 2  # tiny-n promotions at most
        assert len(tracker) == 10

    def test_insert_goes_directly_into_overlapping_hotspot(self):
        tracker = HotspotTracker(alpha=0.2)
        for __ in range(10):
            tracker.insert(Interval(0.0, 10.0))
        listener = RecordingHotspotListener()
        tracker.add_listener(listener)
        extra = Interval(5.0, 20.0)
        tracker.insert(extra)
        assert listener.hot_added == [extra]
        assert tracker.is_hotspot_item(extra)

    def test_delete_hot_item(self):
        tracker = HotspotTracker(alpha=0.2)
        items = [Interval(0.0, 10.0) for __ in range(10)]
        for item in items:
            tracker.insert(item)
        tracker.delete(items[0])
        tracker.validate()
        assert len(tracker) == 9

    def test_delete_scattered_item(self):
        tracker = HotspotTracker(alpha=0.9)
        a = Interval(0, 1)
        b = Interval(100, 101)
        c = Interval(200, 201)
        for item in (a, b, c):
            tracker.insert(item)
        tracker.delete(b)
        tracker.validate()
        assert len(tracker) == 2


class TestPromoteDemote:
    def test_demotion_when_hotspot_dilutes(self):
        tracker = HotspotTracker(alpha=0.4)
        hot_items = [Interval(0.0, 1.0) for __ in range(4)]
        for item in hot_items:
            tracker.insert(item)
        assert tracker.hotspot_coverage == 1.0
        # Flood with scattered queries until the group is < alpha/2 of total.
        for i in range(30):
            tracker.insert(Interval(1000.0 + i * 50, 1000.0 + i * 50 + 1))
        tracker.validate()
        assert not tracker.is_hotspot_item(hot_items[0])

    def test_promotion_after_deletions_shrink_n(self):
        tracker = HotspotTracker(alpha=0.5)
        # Noise first so n is already large when the cluster arrives and the
        # cluster stays below the promote threshold (4 < 0.5 * 12).
        noise = [Interval(1000.0 + i * 50, 1000.0 + i * 50 + 1) for i in range(8)]
        cluster = [Interval(0.0, 1.0) for __ in range(4)]
        for item in noise + cluster:
            tracker.insert(item)
        assert not tracker.is_hotspot_item(cluster[0])
        for item in noise:
            tracker.delete(item)
        tracker.validate()
        assert tracker.is_hotspot_item(cluster[0])

    def test_listener_promote_demote_sequence(self):
        listener = RecordingHotspotListener()
        tracker = HotspotTracker(alpha=0.4)
        tracker.add_listener(listener)
        cluster = [Interval(0.0, 1.0) for __ in range(4)]
        for item in cluster:
            tracker.insert(item)
        assert len(listener.promoted) >= 1
        for i in range(30):
            tracker.insert(Interval(1000.0 + i * 50, 1000.0 + i * 50 + 1))
        assert len(listener.demoted) >= 1


class TestInvariants:
    @given(
        st.lists(int_interval_strategy(), min_size=1, max_size=70),
        st.lists(st.integers(0, 10_000), max_size=50),
        st.sampled_from([0.1, 0.25, 0.5]),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_under_random_updates(self, intervals, picks, alpha):
        intervals = fresh_intervals(intervals)
        tracker = HotspotTracker(alpha=alpha)
        live = []
        ops = iter(picks)
        for interval in intervals:
            tracker.insert(interval)
            live.append(interval)
            pick = next(ops, None)
            if pick is not None and live and pick % 3 == 0:
                victim = live.pop(pick % len(live))
                tracker.delete(victim)
        tracker.validate()
        # (I3): amortized boundary moves <= 5 per update.
        assert tracker.boundary_moves() <= 5 * tracker.update_count

    @given(st.lists(int_interval_strategy(), min_size=5, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_hotspot_group_count_bound(self, intervals):
        tracker = HotspotTracker(alpha=0.2)
        for interval in fresh_intervals(intervals):
            tracker.insert(interval)
        assert len(tracker.hotspot_groups) <= 2 / 0.2

    def test_moves_bound_on_adversarial_stream(self):
        # Repeatedly grow a cluster to the promote threshold and dilute it
        # back below the demote threshold.
        tracker = HotspotTracker(alpha=0.5)
        rng = random.Random(5)
        live = []
        for round_no in range(20):
            for __ in range(4):
                item = Interval(0.0, 1.0)
                tracker.insert(item)
                live.append(item)
            for i in range(6):
                item = Interval(5000.0 + rng.random() * 5000, 9999.0 + rng.random())
                tracker.insert(item)
                live.append(item)
            for __ in range(5):
                victim = live.pop(rng.randrange(len(live)))
                tracker.delete(victim)
        tracker.validate()
        assert tracker.boundary_moves() <= 5 * tracker.update_count


class TestWithRefinedPartition:
    def test_refined_partition_backend(self):
        tracker = HotspotTracker(
            alpha=0.3,
            partition_factory=lambda eps, iof: RefinedStabbingPartition(
                epsilon=eps, interval_of=iof, seed=13
            ),
        )
        rng = random.Random(6)
        live = []
        for __ in range(200):
            if rng.random() < 0.5:
                interval = Interval(0.0, 10.0)  # hotspot cluster
            else:
                lo = rng.uniform(100, 1000)
                interval = Interval(lo, lo + 5)
            tracker.insert(interval)
            live.append(interval)
            if rng.random() < 0.3:
                victim = live.pop(rng.randrange(len(live)))
                tracker.delete(victim)
        tracker.validate()
        assert tracker.hotspot_coverage > 0.3
