"""Focused tests for the B+ tree bulk leaf-walk collectors (the SSI result
enumeration hot path)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dstruct.btree import BPlusTree


def build(keys, order=4):
    tree = BPlusTree(order)
    for key in keys:
        tree.insert(key, f"v{key}")
    return tree


class TestScalarCollectors:
    def test_collect_forward_le(self):
        tree = build(range(0, 50, 5))
        cur = tree.cursor_ge(12)
        assert cur.collect_forward_le(30) == ["v15", "v20", "v25", "v30"]

    def test_collect_forward_le_runs_off_end(self):
        tree = build([1, 2, 3])
        cur = tree.cursor_ge(2)
        assert cur.collect_forward_le(999) == ["v2", "v3"]

    def test_collect_backward_ge_ascending_order(self):
        tree = build(range(0, 50, 5))
        cur = tree.cursor_le(33)
        assert cur.collect_backward_ge(15) == ["v15", "v20", "v25", "v30"]

    def test_collect_backward_ge_runs_off_start(self):
        tree = build([5, 6, 7])
        cur = tree.cursor_le(6)
        assert cur.collect_backward_ge(-999) == ["v5", "v6"]

    def test_cursor_position_unchanged(self):
        tree = build(range(10))
        cur = tree.cursor_ge(3)
        cur.collect_forward_le(7)
        assert cur.key == 3

    def test_counts_scan_steps(self):
        tree = build(range(20))
        tree.reset_counters()
        tree.cursor_ge(0).collect_forward_le(9)
        assert tree.scan_steps >= 10

    @given(
        st.lists(st.integers(0, 40), min_size=1, max_size=80),
        st.integers(-5, 45),
        st.integers(-5, 45),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_filter_semantics(self, keys, start, bound):
        tree = BPlusTree(4)
        for key in keys:
            tree.insert(key, key)
        ordered = sorted(keys)
        cur = tree.cursor_ge(start)
        got = cur.collect_forward_le(bound)
        assert got == [k for k in ordered if start <= k <= bound]
        back = tree.cursor_le(start)
        got_back = back.collect_backward_ge(bound)
        assert got_back == [k for k in ordered if bound <= k <= start]


class TestCompositeCollectors:
    def build_composite(self):
        tree = BPlusTree(4)
        for b in range(3):
            for c in range(6):
                tree.insert((float(b), float(c)), (b, c))
        return tree

    def test_forward_prefix_stops_at_key_change(self):
        tree = self.build_composite()
        cur = tree.cursor_ge((1.0, 2.0))
        got = cur.collect_forward_prefix_le(1.0, 99.0)
        assert got == [(1, c) for c in range(2, 6)]

    def test_backward_prefix_stops_at_key_change(self):
        tree = self.build_composite()
        cur = tree.cursor_le((1.0, 3.0))
        got = cur.collect_backward_prefix_ge(1.0, -99.0)
        assert got == [(1, c) for c in range(0, 4)]

    def test_prefix_bounds_respected(self):
        tree = self.build_composite()
        cur = tree.cursor_ge((2.0, 1.0))
        assert cur.collect_forward_prefix_le(2.0, 3.0) == [(2, 1), (2, 2), (2, 3)]

    def test_empty_when_prefix_mismatch(self):
        tree = self.build_composite()
        cur = tree.cursor_ge((1.0, 5.5))  # lands on (2, 0)
        assert cur.collect_forward_prefix_le(1.0, 99.0) == []

    def test_range_values(self):
        tree = build(range(0, 30, 3))
        assert tree.range_values(5, 14) == ["v6", "v9", "v12"]
        assert tree.range_values(100, 200) == []
        assert BPlusTree(4).range_values(0, 1) == []
