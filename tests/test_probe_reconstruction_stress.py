"""Stress tests: join probes stay correct while the underlying partition
reconstructs aggressively (tiny epsilon, heavy churn, refined backend)."""

import random

from repro.core.intervals import Interval
from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.refined_partition import RefinedStabbingPartition
from repro.engine.queries import (
    BandJoinQuery,
    SelectJoinQuery,
    band_interval,
    brute_force_band_join,
    brute_force_select_join,
    range_c_interval,
)
from repro.engine.table import TableR, TableS
from repro.operators.band_join import BJSSI
from repro.operators.select_join import SJSSI


def norm(results):
    return {q.qid: sorted(s.sid for s in v) for q, v in results.items()}


def test_band_join_correct_across_aggressive_reconstruction():
    rng = random.Random(1)
    table_s = TableS(order=4)
    for __ in range(150):
        table_s.add(rng.uniform(0, 80), 0.0)
    table_r = TableR(order=4)
    for backend in (
        LazyStabbingPartition(epsilon=0.25, interval_of=band_interval, trigger="simple"),
        RefinedStabbingPartition(epsilon=0.25, interval_of=band_interval, seed=2),
    ):
        strategy = BJSSI(table_s, table_r, partition=backend)
        live = []
        for step in range(250):
            if live and rng.random() < 0.45:
                query = live.pop(rng.randrange(len(live)))
                strategy.remove_query(query)
            else:
                lo = rng.uniform(-8, 8)
                query = BandJoinQuery(Interval(lo, lo + rng.uniform(0, 3)))
                live.append(query)
                strategy.add_query(query)
            if step % 20 == 19:
                r = table_r.new_row(0.0, rng.uniform(0, 80))
                assert norm(strategy.process_r(r)) == norm(
                    brute_force_band_join(live, r, table_s)
                )
        assert backend.reconstruction_count > 0, "stress test never reconstructed"


def test_select_join_correct_across_aggressive_reconstruction():
    rng = random.Random(3)
    table_s = TableS(order=4)
    for __ in range(200):
        table_s.add(float(rng.randrange(8)), rng.uniform(0, 60))
    table_r = TableR(order=4)
    backend = LazyStabbingPartition(
        epsilon=0.25, interval_of=range_c_interval, trigger="simple"
    )
    strategy = SJSSI(table_s, table_r, partition_c=backend, symmetric=False)
    live = []
    for step in range(250):
        if live and rng.random() < 0.45:
            query = live.pop(rng.randrange(len(live)))
            strategy.remove_query(query)
        else:
            a_lo = rng.uniform(0, 50)
            c_lo = rng.uniform(0, 50)
            query = SelectJoinQuery(
                Interval(a_lo, a_lo + rng.uniform(0, 15)),
                Interval(c_lo, c_lo + rng.uniform(0, 15)),
            )
            live.append(query)
            strategy.add_query(query)
        if step % 20 == 19:
            r = table_r.new_row(rng.uniform(0, 60), float(rng.randrange(8)))
            assert norm(strategy.process_r(r)) == norm(
                brute_force_select_join(live, r, table_s)
            )
    assert backend.reconstruction_count > 0
