"""Unit and property tests for the Interval value type."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import Interval, common_intersection, is_stabbed_by

from conftest import int_interval_strategy, interval_strategy


class TestConstruction:
    def test_valid(self):
        interval = Interval(1.0, 2.5)
        assert interval.lo == 1.0
        assert interval.hi == 2.5

    def test_degenerate_point_interval_allowed(self):
        interval = Interval(3.0, 3.0)
        assert interval.contains(3.0)
        assert interval.length == 0.0

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)
        with pytest.raises(ValueError):
            Interval(0.0, math.nan)

    def test_frozen_and_hashable(self):
        interval = Interval(0.0, 1.0)
        with pytest.raises(Exception):
            interval.lo = 5.0  # type: ignore[misc]
        assert hash(Interval(0.0, 1.0)) == hash(interval)

    def test_equality_by_value(self):
        assert Interval(0.0, 1.0) == Interval(0.0, 1.0)
        assert Interval(0.0, 1.0) != Interval(0.0, 2.0)


class TestContainsOverlap:
    def test_contains_endpoints(self):
        interval = Interval(1.0, 4.0)
        assert interval.contains(1.0)
        assert interval.contains(4.0)
        assert not interval.contains(0.999)
        assert not interval.contains(4.001)

    def test_overlaps_touching(self):
        # Closed intervals sharing one endpoint overlap.
        assert Interval(0, 1).overlaps(Interval(1, 2))
        assert Interval(1, 2).overlaps(Interval(0, 1))

    def test_overlaps_disjoint(self):
        assert not Interval(0, 1).overlaps(Interval(1.5, 2))

    def test_overlaps_nested(self):
        assert Interval(0, 10).overlaps(Interval(3, 4))
        assert Interval(3, 4).overlaps(Interval(0, 10))

    @given(interval_strategy(), interval_strategy())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(interval_strategy(), interval_strategy())
    def test_overlap_iff_intersection(self, a, b):
        assert a.overlaps(b) == (a.intersect(b) is not None)


class TestIntersect:
    def test_basic(self):
        assert Interval(0, 5).intersect(Interval(3, 8)) == Interval(3, 5)

    def test_disjoint_returns_none(self):
        assert Interval(0, 1).intersect(Interval(2, 3)) is None

    def test_touching_returns_point(self):
        assert Interval(0, 1).intersect(Interval(1, 2)) == Interval(1, 1)

    @given(interval_strategy(), interval_strategy())
    def test_intersection_contained_in_both(self, a, b):
        result = a.intersect(b)
        if result is not None:
            assert a.lo <= result.lo and result.hi <= a.hi
            assert b.lo <= result.lo and result.hi <= b.hi

    @given(interval_strategy(), interval_strategy(), st.floats(-100, 100))
    def test_intersection_point_membership(self, a, b, x):
        result = a.intersect(b)
        in_both = a.contains(x) and b.contains(x)
        if in_both:
            assert result is not None and result.contains(x)
        elif result is not None:
            assert not result.contains(x)


class TestShift:
    def test_shift_positive(self):
        assert Interval(1, 2).shift(10) == Interval(11, 12)

    def test_shift_negative(self):
        assert Interval(1, 2).shift(-3) == Interval(-2, -1)

    @given(int_interval_strategy(), st.integers(-100, 100), st.integers(-100, 100))
    def test_shift_preserves_membership(self, interval, delta, x):
        assert interval.contains(x) == interval.shift(delta).contains(x + delta)


class TestAggregates:
    def test_common_intersection_basic(self):
        result = common_intersection([Interval(0, 10), Interval(2, 8), Interval(4, 12)])
        assert result == Interval(4, 8)

    def test_common_intersection_empty_result(self):
        assert common_intersection([Interval(0, 1), Interval(2, 3)]) is None

    def test_common_intersection_single(self):
        assert common_intersection([Interval(1, 2)]) == Interval(1, 2)

    def test_common_intersection_empty_input_rejected(self):
        with pytest.raises(ValueError):
            common_intersection([])

    def test_is_stabbed_by(self):
        intervals = [Interval(0, 5), Interval(3, 9)]
        assert is_stabbed_by(intervals, 4)
        assert not is_stabbed_by(intervals, 1)

    @given(st.lists(int_interval_strategy(), min_size=1, max_size=20))
    def test_common_intersection_is_stabbing_witness(self, intervals):
        result = common_intersection(intervals)
        if result is not None:
            assert is_stabbed_by(intervals, result.lo)
            assert is_stabbed_by(intervals, result.hi)

    def test_midpoint_and_str(self):
        interval = Interval(2.0, 4.0)
        assert interval.midpoint == 3.0
        assert str(interval) == "[2, 4]"
        assert list(interval) == [2.0, 4.0]
