"""Tests for the bounded event pipeline: backpressure, execution modes,
metrics, and query-event barriers."""

import sys

import pytest

from repro.core.intervals import Interval
from repro.engine.events import DataEvent, EventKind, QueryEvent
from repro.engine.queries import BandJoinQuery, SelectJoinQuery
from repro.engine.table import RTuple, STuple
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.pipeline import BackpressurePolicy, EventPipeline
from repro.runtime.replay import StreamProfile, generate_mixed_stream, run_replay


def r_insert(rid, a=5.0, b=10.0):
    return DataEvent(EventKind.INSERT, "R", RTuple(rid, a, b))


def s_insert(sid, b=10.0, c=50.0):
    return DataEvent(EventKind.INSERT, "S", STuple(sid, b, c))


def wide_select():
    return SelectJoinQuery(Interval(0.0, 10_000.0), Interval(0.0, 10_000.0))


class TestBackpressure:
    def make(self, policy):
        # batch_size larger than capacity so auto-flush never makes room.
        return EventPipeline(
            num_shards=2,
            alpha=None,
            batch_size=64,
            queue_capacity=5,
            backpressure=policy,
            mode="inline",
        )

    def test_reject_returns_false_and_counts(self):
        with self.make("reject") as pipeline:
            accepted = [pipeline.submit(r_insert(i)) for i in range(8)]
            assert accepted == [True] * 5 + [False] * 3
            assert pipeline.rejected_seqs == [5, 6, 7]
            snap = pipeline.metrics.snapshot()
            assert snap["counters"]["pipeline/events_rejected"] == 3
            assert snap["counters"]["pipeline/events_submitted"] == 8
            applied = pipeline.drain()
            assert [seq for seq, __, __ in applied] == [0, 1, 2, 3, 4]

    def test_drop_oldest_evicts_and_counts(self):
        with self.make("drop-oldest") as pipeline:
            for i in range(8):
                assert pipeline.submit(r_insert(i))
            assert pipeline.dropped_seqs == [0, 1, 2]
            assert pipeline.metrics.snapshot()["counters"]["pipeline/events_dropped"] == 3
            applied = pipeline.drain()
            assert [seq for seq, __, __ in applied] == [3, 4, 5, 6, 7]

    def test_block_flushes_to_make_room(self):
        with self.make(BackpressurePolicy.BLOCK) as pipeline:
            for i in range(8):
                assert pipeline.submit(r_insert(i))
            pipeline.drain()
            snap = pipeline.metrics.snapshot()
            assert snap["counters"]["pipeline/backpressure_blocks"] == 1
            # Lazily-created counters: never dropping means no counter at all.
            assert snap["counters"].get("pipeline/events_dropped", 0) == 0
            assert snap["counters"]["pipeline/events_applied"] == 8  # nothing lost

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            EventPipeline(backpressure="nonsense")

    def test_drop_oldest_suppresses_delete_of_evicted_insert(self):
        # Seqs 0-2 are evicted before ever reaching a shard; their deletes
        # must be refused too, not applied against never-installed state.
        with self.make("drop-oldest") as pipeline:
            for i in range(8):
                assert pipeline.submit(r_insert(i))
            assert pipeline.dropped_seqs == [0, 1, 2]
            for i in range(3):
                assert pipeline.submit(
                    DataEvent(EventKind.DELETE, "R", RTuple(i, 5.0, 10.0))
                )
            assert pipeline.dropped_seqs == [0, 1, 2, 8, 9, 10]
            applied = pipeline.drain()
            assert [seq for seq, __, __ in applied] == [3, 4, 5, 6, 7]
            snap = pipeline.metrics.snapshot()
            assert snap["counters"]["pipeline/events_dropped"] == 6

    def test_reject_suppresses_delete_of_rejected_insert(self):
        with self.make("reject") as pipeline:
            accepted = [pipeline.submit(r_insert(i)) for i in range(8)]
            assert accepted == [True] * 5 + [False] * 3
            pipeline.flush()  # make room so the deletes are not capacity-rejected
            # Deleting a row whose insert was rejected is itself rejected ...
            assert not pipeline.submit(
                DataEvent(EventKind.DELETE, "R", RTuple(6, 5.0, 10.0))
            )
            assert pipeline.rejected_seqs == [5, 6, 7, 8]
            # ... but a successful re-submit of the insert clears the mark,
            # after which its delete flows through normally.
            assert pipeline.submit(r_insert(7))
            pipeline.flush()  # keep the pair in separate batches (no coalescing)
            assert pipeline.submit(
                DataEvent(EventKind.DELETE, "R", RTuple(7, 5.0, 10.0))
            )
            pipeline.drain()
            snap = pipeline.metrics.snapshot()
            assert snap["counters"]["pipeline/events_applied"] == 7


class TestBatchTriggers:
    def test_batch_size_triggers_flush(self):
        with EventPipeline(
            num_shards=2, alpha=None, batch_size=4, mode="inline"
        ) as pipeline:
            for i in range(4):
                pipeline.submit(r_insert(i))
            assert pipeline.pending == 0  # size bound flushed the batch
            assert pipeline.metrics.snapshot()["counters"]["pipeline/batches"] == 1

    def test_max_delay_zero_flushes_every_event(self):
        with EventPipeline(
            num_shards=2, alpha=None, batch_size=64, max_delay=0.0, mode="inline"
        ) as pipeline:
            pipeline.submit(r_insert(0))
            assert pipeline.pending == 0


class TestQueryEventBarrier:
    def test_subscribe_drains_pending_events_first(self):
        """A mid-stream subscription must observe exactly the stream prefix
        before it: pending inserts flush before the query registers, so
        they produce no deltas for it, but their rows are installed."""
        with EventPipeline(
            num_shards=2, alpha=None, batch_size=64, mode="inline"
        ) as pipeline:
            pipeline.submit(s_insert(0))
            assert pipeline.pending == 1
            query = wide_select()
            pipeline.submit(QueryEvent(EventKind.INSERT, query))
            assert pipeline.pending == 0  # barrier flushed the S insert
            results = pipeline.run([r_insert(0)])
            (seq, __, deltas), = results
            assert len(deltas[query]) == 1  # joins the pre-subscribe S row

    def test_unsubscribe_stops_deltas(self):
        with EventPipeline(
            num_shards=2, alpha=None, batch_size=64, mode="inline"
        ) as pipeline:
            query = wide_select()
            pipeline.submit(QueryEvent(EventKind.INSERT, query))
            pipeline.submit(s_insert(0))
            pipeline.submit(QueryEvent(EventKind.DELETE, query))
            results = pipeline.run([r_insert(0)])
            assert results[0][2] == {}

    def test_callbacks_fire_on_flush(self):
        seen = []
        with EventPipeline(
            num_shards=2, alpha=None, batch_size=64, mode="inline"
        ) as pipeline:
            pipeline.subscribe(
                wide_select(),
                on_results=lambda q, row, matches: seen.append((row.rid, len(matches))),
            )
            pipeline.submit(s_insert(0))
            pipeline.submit(r_insert(7))
            pipeline.drain()
        assert seen == [(7, 1)]


class TestExecutionModes:
    @pytest.fixture(scope="class")
    def stream(self):
        profile = StreamProfile(
            n_events=400,
            n_initial_queries=40,
            query_event_fraction=0.05,
            delete_fraction=0.25,
            churn=0.3,
            min_delete_age=32,
            recent_window=8,
            seed=9,
        )
        return generate_mixed_stream(profile)

    def test_thread_mode_equivalent(self, stream):
        report = run_replay(stream, num_shards=3, batch_size=16, mode="thread")
        assert report.equivalent, report.summary()

    @pytest.mark.skipif(
        sys.platform.startswith("win"), reason="fork-based worker pools"
    )
    def test_process_mode_equivalent(self, stream):
        report = run_replay(stream, num_shards=2, batch_size=32, mode="process")
        assert report.equivalent, report.summary()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            EventPipeline(mode="gpu")


@pytest.mark.skipif(
    sys.platform.startswith("win"), reason="fork-based worker pools"
)
class TestProcessBackend:
    """The process execution mode pickles events/queries across the worker
    boundary and resolves returned deltas back by qid — every path here is
    distinct from the inline/thread backends and deserves its own coverage."""

    def make(self, **kwargs):
        kwargs.setdefault("num_shards", 2)
        kwargs.setdefault("alpha", None)
        kwargs.setdefault("batch_size", 8)
        return EventPipeline(mode="process", **kwargs)

    def test_deltas_resolve_to_caller_query_objects(self):
        with self.make() as pipeline:
            query = wide_select()
            pipeline.subscribe(query)
            results = pipeline.run([s_insert(0), r_insert(0)])
            (__, __, s_deltas), (__, __, r_deltas) = results
            assert s_deltas == {}
            (got_query, matches), = r_deltas.items()
            # The worker unpickled its own copy; the caller gets the original.
            assert got_query is query
            assert [row.sid for row in matches] == [0]

    def test_mid_stream_subscribe_unsubscribe_barrier(self):
        """QueryEvents act as barriers in process mode too: the subscription
        observes exactly the stream prefix before it, and unsubscribing by
        qid stops deltas without disturbing other subscriptions."""
        with self.make() as pipeline:
            first = wide_select()
            second = wide_select()
            pipeline.submit(s_insert(0))
            pipeline.submit(QueryEvent(EventKind.INSERT, first))
            assert pipeline.pending == 0  # barrier flushed the S insert
            pipeline.submit(QueryEvent(EventKind.INSERT, second))
            results = pipeline.run([r_insert(0)])
            (__, __, deltas), = results
            assert {q.qid for q in deltas} == {first.qid, second.qid}
            pipeline.submit(QueryEvent(EventKind.DELETE, first))
            results = pipeline.run([r_insert(1)])
            (__, __, deltas), = results
            assert {q.qid for q in deltas} == {second.qid}
            assert pipeline.subscription_count == 1

    def test_callbacks_fire_on_flush(self):
        seen = []
        with self.make() as pipeline:
            pipeline.subscribe(
                wide_select(),
                on_results=lambda q, row, matches: seen.append(
                    (q.qid, row.rid, len(matches))
                ),
            )
            pipeline.submit(s_insert(0))
            pipeline.submit(s_insert(1))
            pipeline.submit(r_insert(7))
            pipeline.drain()
        assert len(seen) == 1
        assert seen[0][1:] == (7, 2)

    def test_metrics_and_coalescing(self):
        with self.make(batch_size=64) as pipeline:
            pipeline.subscribe(wide_select())
            pipeline.submit(r_insert(0))
            pipeline.submit(DataEvent(EventKind.DELETE, "R", RTuple(0, 5.0, 10.0)))
            pipeline.submit(s_insert(0))
            results = pipeline.drain()
            # The insert+delete pair coalesced away before any worker saw it.
            assert pipeline.cancelled_pairs == [(0, 1)]
            assert [seq for seq, __, __ in results] == [2]
            snap = pipeline.metrics.snapshot()
            assert snap["counters"]["pipeline/events_applied"] == 1
            assert any(name.startswith("shard/") for name in snap["histograms"])

    def test_hotspot_path_in_workers(self):
        """alpha-enabled shards run the hotspot tracker inside the worker
        process; a pile of near-identical bands must still produce correct
        join results through promotion."""
        with self.make(alpha=0.2, num_shards=1, batch_size=4) as pipeline:
            queries = [
                BandJoinQuery(Interval(-1.0 - 0.01 * i, 1.0)) for i in range(12)
            ]
            for query in queries:
                pipeline.subscribe(query)
            pipeline.submit(r_insert(0, b=10.0))
            pipeline.drain()
            results = pipeline.run([s_insert(0, b=10.0)])
            (__, __, deltas), = results
            # |S.b - R.b| = 0 lies inside every band.
            assert len(deltas) == len(queries)
            assert all([row.rid for row in rows] == [0] for rows in deltas.values())


class TestMetrics:
    def test_snapshot_and_render(self):
        with EventPipeline(
            num_shards=2, alpha=None, batch_size=2, mode="inline"
        ) as pipeline:
            pipeline.subscribe(wide_select())
            pipeline.run([s_insert(0), r_insert(0), r_insert(1)])
            snap = pipeline.metrics.snapshot()
            assert snap["counters"]["pipeline/events_applied"] == 3
            assert snap["counters"]["pipeline/results_produced"] == 2
            assert snap["histograms"]["pipeline/batch_size"]["count"] == 2
            assert "shard/0/batch_us" in snap["histograms"]
            text = pipeline.metrics.render()
            assert "pipeline/events_applied" in text

    def test_hotspot_promotions_counted(self):
        metrics = MetricsRegistry()
        with EventPipeline(
            num_shards=1, alpha=0.2, batch_size=8, mode="inline", metrics=metrics
        ) as pipeline:
            # A pile of near-identical bands forms one dominant stabbing
            # group, which the shard's tracker promotes to a hotspot.
            for i in range(30):
                pipeline.subscribe(BandJoinQuery(Interval(-1.0 - 0.01 * i, 1.0)))
            assert metrics.snapshot()["counters"]["runtime/hotspot_promotions"] >= 1
