"""Property tests for the columnar frame codec (hypothesis-driven).

The wire contract under test:

* BATCH frames round-trip arbitrary insert/delete interleavings over both
  relations exactly — sequence numbers, row payloads (including NaN and
  ±inf coordinates), and the per-entry probe/state flags;
* RESULT frames round-trip ``(seq, {qid: rows})`` deltas against the
  frame's own deduplicated row table, with the documented normalization
  that *empty* deltas are elided on encode;
* ``encode → decode → encode`` is a fixed point, which is how NaN-bearing
  payloads are compared (bytes are exact where ``==`` on floats is not);
* every lifecycle frame survives ``decode_frame`` dispatch, and corrupted
  headers fail as :class:`FrameError`, never as silent misdecodes.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.engine.events import DataEvent, EventKind, QueryEvent
from repro.core.intervals import Interval
from repro.engine.queries import BandJoinQuery
from repro.engine.table import RTuple, STuple
from repro.runtime.transport import frames

# Any IEEE double the tables can hold, NaN and infinities included.
coords = st.floats(allow_nan=True, allow_infinity=True, width=64)
i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


@st.composite
def shard_entries(draw, min_size=0, max_size=40):
    """Arbitrary interleavings of R/S inserts and deletes."""
    out = []
    for _ in range(draw(st.integers(min_size, max_size))):
        relation = draw(st.sampled_from(["R", "S"]))
        kind = draw(st.sampled_from([EventKind.INSERT, EventKind.DELETE]))
        x, y = draw(coords), draw(coords)
        row_id = draw(i64)
        row = RTuple(row_id, x, y) if relation == "R" else STuple(row_id, x, y)
        out.append(
            (
                draw(i64),
                DataEvent(kind, relation, row),
                draw(st.booleans()),
                draw(st.booleans()),
            )
        )
    return out


rows = st.one_of(
    st.builds(RTuple, i64, coords, coords),
    st.builds(STuple, i64, coords, coords),
)


@st.composite
def seq_results(draw):
    """``(seq, {qid: rows})`` lists with strictly increasing seqs (the
    worker emits them in batch order) and possibly-empty delta lists."""
    seqs = sorted(draw(st.sets(i64, max_size=8)))
    out = []
    for seq in seqs:
        qids = draw(st.sets(i64, max_size=4))
        out.append(
            (seq, {qid: draw(st.lists(rows, max_size=5)) for qid in qids})
        )
    return out


def _entries_equal(got, want):
    """Structural equality that treats NaN as equal to itself."""
    if len(got) != len(want):
        return False
    for (g_seq, g_ev, g_p, g_s), (w_seq, w_ev, w_p, w_s) in zip(got, want):
        if (g_seq, g_p, g_s) != (w_seq, w_p, w_s):
            return False
        if g_ev.kind is not w_ev.kind or g_ev.relation != w_ev.relation:
            return False
        g_vals = (
            (g_ev.row.rid, g_ev.row.a, g_ev.row.b)
            if g_ev.relation == "R"
            else (g_ev.row.sid, g_ev.row.b, g_ev.row.c)
        )
        w_vals = (
            (w_ev.row.rid, w_ev.row.a, w_ev.row.b)
            if w_ev.relation == "R"
            else (w_ev.row.sid, w_ev.row.b, w_ev.row.c)
        )
        for g, w in zip(g_vals, w_vals):
            if g != w and not (
                isinstance(g, float) and math.isnan(g) and math.isnan(w)
            ):
                return False
    return True


class TestBatchFrameRoundTrip:
    @settings(max_examples=200)
    @given(shard_entries())
    def test_roundtrip(self, entries):
        payload = frames.encode_batch_frame(entries)
        frame_type, decoded = frames.decode_frame(payload)
        assert frame_type == frames.FRAME_BATCH
        assert _entries_equal(decoded, entries)

    @settings(max_examples=100)
    @given(shard_entries())
    def test_encode_decode_encode_fixed_point(self, entries):
        payload = frames.encode_batch_frame(entries)
        _, decoded = frames.decode_frame(payload)
        assert frames.encode_batch_frame(decoded) == payload

    def test_empty_batch(self):
        payload = frames.encode_batch_frame([])
        assert frames.decode_frame(payload) == (frames.FRAME_BATCH, [])


class TestResultFrameRoundTrip:
    @settings(max_examples=200)
    @given(seq_results(), st.floats(min_value=0.0, max_value=1e6))
    def test_roundtrip_modulo_empty_elision(self, results, elapsed):
        payload = frames.encode_result_frame(elapsed, results)
        frame_type, (got_elapsed, got) = frames.decode_frame(payload)
        assert frame_type == frames.FRAME_RESULT
        assert got_elapsed == elapsed
        # The documented normalization: empty per-qid deltas are elided,
        # and with them any seq left with no non-empty delta at all.
        want = [
            (seq, {qid: rows for qid, rows in deltas.items() if rows})
            for seq, deltas in results
        ]
        want = [(seq, deltas) for seq, deltas in want if deltas]
        assert frames.encode_result_frame(elapsed, got) == frames.encode_result_frame(
            elapsed, want
        )

    @settings(max_examples=100)
    @given(seq_results(), st.floats(min_value=0.0, max_value=1e6))
    def test_encode_decode_encode_fixed_point(self, results, elapsed):
        payload = frames.encode_result_frame(elapsed, results)
        _, (got_elapsed, got) = frames.decode_frame(payload)
        assert frames.encode_result_frame(got_elapsed, got) == payload

    def test_row_table_deduplicates_shared_rows(self):
        row = RTuple(1, 2.0, 3.0)
        results = [(0, {7: [row], 8: [row]})]
        payload = frames.encode_result_frame(0.0, results)
        _, (_, decoded) = frames.decode_frame(payload)
        assert decoded == [(0, {7: [row], 8: [row]})]


class TestLifecycleFrames:
    def test_ack_shutdown_error_roundtrip(self):
        assert frames.decode_frame(frames.encode_ack_frame()) == (
            frames.FRAME_ACK,
            None,
        )
        assert frames.decode_frame(frames.encode_shutdown_frame()) == (
            frames.FRAME_SHUTDOWN,
            None,
        )
        frame_type, message = frames.decode_frame(
            frames.encode_error_frame("shard 3 exploded: déjà vu")
        )
        assert frame_type == frames.FRAME_ERROR
        assert message == "shard 3 exploded: déjà vu"

    def test_control_frame_roundtrip(self):
        query = BandJoinQuery(Interval(5.0, 25.0), qid=42)
        payload = frames.encode_control_frame(QueryEvent(EventKind.INSERT, query))
        frame_type, record = frames.decode_frame(payload)
        assert frame_type == frames.FRAME_CONTROL
        assert record is not None

    def test_header_validation(self):
        with pytest.raises(frames.FrameError, match="no header"):
            frames.decode_frame(b"")
        with pytest.raises(frames.FrameError, match="version"):
            frames.decode_frame(bytes([frames.FRAME_ACK, 99]))
        with pytest.raises(frames.FrameError, match="unknown frame type"):
            frames.decode_frame(bytes([250, frames.FRAME_VERSION]))
        with pytest.raises(frames.FrameError, match="carries no body"):
            frames.decode_frame(frames.encode_ack_frame() + b"junk")
