"""Property tests for the columnar frame codec (hypothesis-driven).

The wire contract under test:

* BATCH frames round-trip arbitrary insert/delete interleavings over both
  relations exactly — sequence numbers, row payloads (including NaN and
  ±inf coordinates), and the per-entry probe/state flags;
* RESULT frames round-trip ``(seq, {qid: rows})`` deltas against the
  frame's own deduplicated row table, with the documented normalization
  that *empty* deltas are elided on encode;
* ``encode → decode → encode`` is a fixed point, which is how NaN-bearing
  payloads are compared (bytes are exact where ``==`` on floats is not);
* every lifecycle frame survives ``decode_frame`` dispatch, and corrupted
  headers fail as :class:`FrameError`, never as silent misdecodes.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.engine.events import DataEvent, EventKind, QueryEvent
from repro.core.intervals import Interval
from repro.engine.queries import BandJoinQuery
from repro.engine.table import RTuple, STuple
from repro.runtime.transport import frames

# Any IEEE double the tables can hold, NaN and infinities included.
coords = st.floats(allow_nan=True, allow_infinity=True, width=64)
i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


@st.composite
def shard_entries(draw, min_size=0, max_size=40):
    """Arbitrary interleavings of R/S inserts and deletes."""
    out = []
    for _ in range(draw(st.integers(min_size, max_size))):
        relation = draw(st.sampled_from(["R", "S"]))
        kind = draw(st.sampled_from([EventKind.INSERT, EventKind.DELETE]))
        x, y = draw(coords), draw(coords)
        row_id = draw(i64)
        row = RTuple(row_id, x, y) if relation == "R" else STuple(row_id, x, y)
        out.append(
            (
                draw(i64),
                DataEvent(kind, relation, row),
                draw(st.booleans()),
                draw(st.booleans()),
            )
        )
    return out


rows = st.one_of(
    st.builds(RTuple, i64, coords, coords),
    st.builds(STuple, i64, coords, coords),
)


@st.composite
def seq_results(draw):
    """``(seq, {qid: rows})`` lists with strictly increasing seqs (the
    worker emits them in batch order) and possibly-empty delta lists."""
    seqs = sorted(draw(st.sets(i64, max_size=8)))
    out = []
    for seq in seqs:
        qids = draw(st.sets(i64, max_size=4))
        out.append(
            (seq, {qid: draw(st.lists(rows, max_size=5)) for qid in qids})
        )
    return out


def _entries_equal(got, want):
    """Structural equality that treats NaN as equal to itself."""
    if len(got) != len(want):
        return False
    for (g_seq, g_ev, g_p, g_s), (w_seq, w_ev, w_p, w_s) in zip(got, want):
        if (g_seq, g_p, g_s) != (w_seq, w_p, w_s):
            return False
        if g_ev.kind is not w_ev.kind or g_ev.relation != w_ev.relation:
            return False
        g_vals = (
            (g_ev.row.rid, g_ev.row.a, g_ev.row.b)
            if g_ev.relation == "R"
            else (g_ev.row.sid, g_ev.row.b, g_ev.row.c)
        )
        w_vals = (
            (w_ev.row.rid, w_ev.row.a, w_ev.row.b)
            if w_ev.relation == "R"
            else (w_ev.row.sid, w_ev.row.b, w_ev.row.c)
        )
        for g, w in zip(g_vals, w_vals):
            if g != w and not (
                isinstance(g, float) and math.isnan(g) and math.isnan(w)
            ):
                return False
    return True


class TestBatchFrameRoundTrip:
    @settings(max_examples=200)
    @given(shard_entries())
    def test_roundtrip(self, entries):
        payload = frames.encode_batch_frame(entries)
        frame_type, decoded = frames.decode_frame(payload)
        assert frame_type == frames.FRAME_BATCH
        assert _entries_equal(decoded.entries, entries)
        # No context supplied: the trace fields decode as "absent".
        assert decoded.trace_id == 0
        assert decoded.parent_span_id == 0
        assert decoded.want_telemetry is False
        # Unstamped batches carry a zero ingest column (0 = "not stamped").
        assert decoded.ingest_ns == (0,) * len(entries)

    @settings(max_examples=100)
    @given(shard_entries())
    def test_encode_decode_encode_fixed_point(self, entries):
        payload = frames.encode_batch_frame(entries)
        _, decoded = frames.decode_frame(payload)
        assert frames.encode_batch_frame(decoded.entries) == payload

    def test_empty_batch(self):
        payload = frames.encode_batch_frame([])
        frame_type, decoded = frames.decode_frame(payload)
        assert frame_type == frames.FRAME_BATCH
        assert decoded.entries == []

    @settings(max_examples=100)
    @given(
        shard_entries(min_size=1),
        st.integers(min_value=1, max_value=2**63 - 1),
        st.integers(min_value=0, max_value=2**63 - 1),
        st.booleans(),
    )
    def test_trace_context_roundtrip(self, entries, trace_id, parent, want):
        ingest = list(range(1, len(entries) + 1))
        payload = frames.encode_batch_frame(
            entries,
            ingest_ns=ingest,
            trace_id=trace_id,
            parent_span_id=parent,
            want_telemetry=want,
        )
        _, decoded = frames.decode_frame(payload)
        assert decoded.trace_id == trace_id
        assert decoded.parent_span_id == parent
        assert decoded.want_telemetry is want
        assert list(decoded.ingest_ns) == ingest
        assert _entries_equal(decoded.entries, entries)

    def test_ingest_length_must_match_entries(self):
        entry = (
            0,
            DataEvent(EventKind.INSERT, "R", RTuple(1, 0.0, 0.0)),
            False,
            False,
        )
        with pytest.raises(frames.FrameError, match="parallel"):
            frames.encode_batch_frame([entry], ingest_ns=[1, 2])


class TestResultFrameRoundTrip:
    @settings(max_examples=200)
    @given(seq_results(), st.floats(min_value=0.0, max_value=1e6))
    def test_roundtrip_modulo_empty_elision(self, results, elapsed):
        payload = frames.encode_result_frame(elapsed, results)
        frame_type, (got_elapsed, got) = frames.decode_frame(payload)
        assert frame_type == frames.FRAME_RESULT
        assert got_elapsed == elapsed
        # The documented normalization: empty per-qid deltas are elided,
        # and with them any seq left with no non-empty delta at all.
        want = [
            (seq, {qid: rows for qid, rows in deltas.items() if rows})
            for seq, deltas in results
        ]
        want = [(seq, deltas) for seq, deltas in want if deltas]
        assert frames.encode_result_frame(elapsed, got) == frames.encode_result_frame(
            elapsed, want
        )

    @settings(max_examples=100)
    @given(seq_results(), st.floats(min_value=0.0, max_value=1e6))
    def test_encode_decode_encode_fixed_point(self, results, elapsed):
        payload = frames.encode_result_frame(elapsed, results)
        _, (got_elapsed, got) = frames.decode_frame(payload)
        assert frames.encode_result_frame(got_elapsed, got) == payload

    def test_row_table_deduplicates_shared_rows(self):
        row = RTuple(1, 2.0, 3.0)
        results = [(0, {7: [row], 8: [row]})]
        payload = frames.encode_result_frame(0.0, results)
        _, (_, decoded) = frames.decode_frame(payload)
        assert decoded == [(0, {7: [row], 8: [row]})]


class TestLifecycleFrames:
    def test_ack_shutdown_error_roundtrip(self):
        assert frames.decode_frame(frames.encode_ack_frame()) == (
            frames.FRAME_ACK,
            None,
        )
        assert frames.decode_frame(frames.encode_shutdown_frame()) == (
            frames.FRAME_SHUTDOWN,
            None,
        )
        frame_type, message = frames.decode_frame(
            frames.encode_error_frame("shard 3 exploded: déjà vu")
        )
        assert frame_type == frames.FRAME_ERROR
        assert message == "shard 3 exploded: déjà vu"

    def test_control_frame_roundtrip(self):
        query = BandJoinQuery(Interval(5.0, 25.0), qid=42)
        payload = frames.encode_control_frame(QueryEvent(EventKind.INSERT, query))
        frame_type, record = frames.decode_frame(payload)
        assert frame_type == frames.FRAME_CONTROL
        assert record is not None

    def test_header_validation(self):
        with pytest.raises(frames.FrameError, match="no header"):
            frames.decode_frame(b"")
        with pytest.raises(frames.FrameError, match="version"):
            frames.decode_frame(bytes([frames.FRAME_ACK, 99]))
        with pytest.raises(frames.FrameError, match="unknown frame type"):
            frames.decode_frame(bytes([250, frames.FRAME_VERSION]))
        with pytest.raises(frames.FrameError, match="carries no body"):
            frames.decode_frame(frames.encode_ack_frame() + b"junk")


metric_names = st.text(min_size=1, max_size=40)

u63 = st.integers(min_value=0, max_value=2**63 - 1)


@st.composite
def telemetry_payloads(draw):
    from repro.obs.tracing import SpanRecord

    # One frame = one worker: every span shares the payload's pid (the
    # wire format carries it once in the header, not per span).
    pid = draw(st.integers(min_value=1, max_value=2**22))
    spans = [
        SpanRecord(
            name=draw(metric_names),
            ts_ns=draw(i64),
            dur_ns=draw(st.integers(min_value=0, max_value=2**62)),
            tid=draw(u63),
            # Empty args normalize to None on the wire, so only generate
            # None or non-empty dicts.
            args=draw(
                st.one_of(
                    st.none(),
                    st.dictionaries(
                        st.text(min_size=1, max_size=8),
                        st.integers(min_value=-1000, max_value=1000),
                        min_size=1,
                        max_size=3,
                    ),
                )
            ),
            pid=pid,
            trace_id=draw(u63),
            span_id=draw(u63),
            parent_id=draw(u63),
        )
        for _ in range(draw(st.integers(0, 6)))
    ]
    counters = draw(
        st.dictionaries(metric_names, st.integers(min_value=0, max_value=2**40), max_size=5)
    )
    gauges = draw(
        st.dictionaries(
            metric_names,
            st.floats(allow_nan=False, allow_infinity=True, width=64),
            max_size=5,
        )
    )
    histograms = draw(
        st.dictionaries(
            metric_names,
            st.builds(
                frames.HistogramDelta,
                count=st.integers(min_value=1, max_value=2**40),
                total=st.floats(allow_nan=False, allow_infinity=False, width=64),
                min_value=st.floats(allow_nan=False, allow_infinity=True, width=64),
                max_value=st.floats(allow_nan=False, allow_infinity=True, width=64),
                buckets=st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=63),
                        st.integers(min_value=1, max_value=2**40),
                    ),
                    max_size=6,
                    unique_by=lambda pair: pair[0],
                ),
            ),
            max_size=3,
        )
    )
    return frames.TelemetryPayload(
        pid=pid,
        shard=draw(st.integers(min_value=0, max_value=255)),
        trace_id=draw(u63),
        spans_dropped=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        spans=spans,
        counters=counters,
        gauges=gauges,
        histograms=histograms,
    )


class TestTelemetryFrameRoundTrip:
    @settings(max_examples=150)
    @given(telemetry_payloads())
    def test_roundtrip(self, payload):
        encoded = frames.encode_telemetry_frame(payload)
        frame_type, decoded = frames.decode_frame(encoded)
        assert frame_type == frames.FRAME_TELEMETRY
        assert decoded.pid == payload.pid
        assert decoded.shard == payload.shard
        assert decoded.trace_id == payload.trace_id
        assert decoded.spans_dropped == payload.spans_dropped
        assert decoded.counters == payload.counters
        assert decoded.gauges == payload.gauges
        assert len(decoded.spans) == len(payload.spans)
        for got, want in zip(decoded.spans, payload.spans):
            assert got.name == want.name
            assert got.ts_ns == want.ts_ns
            assert got.dur_ns == want.dur_ns
            assert (got.pid, got.trace_id, got.span_id, got.parent_id) == (
                want.pid, want.trace_id, want.span_id, want.parent_id
            )
            assert got.args == want.args
        assert set(decoded.histograms) == set(payload.histograms)
        for name, want_hist in payload.histograms.items():
            got_hist = decoded.histograms[name]
            assert got_hist.count == want_hist.count
            assert got_hist.total == want_hist.total
            assert sorted(got_hist.buckets) == sorted(want_hist.buckets)

    @settings(max_examples=50)
    @given(telemetry_payloads())
    def test_encode_decode_encode_fixed_point(self, payload):
        encoded = frames.encode_telemetry_frame(payload)
        _, decoded = frames.decode_frame(encoded)
        assert frames.encode_telemetry_frame(decoded) == encoded

    def test_empty_payload(self):
        payload = frames.TelemetryPayload(pid=1, shard=0)
        _, decoded = frames.decode_frame(frames.encode_telemetry_frame(payload))
        assert decoded.spans == []
        assert decoded.counters == {}
        assert decoded.gauges == {}
        assert decoded.histograms == {}
