"""Tests for the range-subscription indexes: all four implementations
agree with brute force; the SSI index exploits the common-box fast path."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.operators.range_select import (
    HotspotRangeIndex,
    IntervalSkipListRangeIndex,
    IntervalTreeRangeIndex,
    RangeSubscription,
    ScanRangeIndex,
    SSIRangeIndex,
)

INDEX_CLASSES = [
    ScanRangeIndex,
    IntervalTreeRangeIndex,
    IntervalSkipListRangeIndex,
    SSIRangeIndex,
    HotspotRangeIndex,
]


def ids(subscriptions):
    return sorted(s.qid for s in subscriptions)


@pytest.mark.parametrize("cls", INDEX_CLASSES)
class TestAgainstOracle:
    def test_basic_matching(self, cls):
        index = cls()
        a = RangeSubscription(Interval(0, 10))
        b = RangeSubscription(Interval(5, 15))
        c = RangeSubscription(Interval(20, 30))
        for s in (a, b, c):
            index.add(s)
        assert ids(index.match(7)) == ids([a, b])
        assert ids(index.match(0)) == ids([a])
        assert index.match(16) == []
        assert ids(index.match(20)) == ids([c])

    def test_removal(self, cls):
        index = cls()
        subs = [RangeSubscription(Interval(0, 10)) for __ in range(5)]
        for s in subs:
            index.add(s)
        for s in subs[::2]:
            index.remove(s)
        assert ids(index.match(5)) == ids(subs[1::2])
        assert len(index) == 2

    def test_duplicate_id_rejected(self, cls):
        index = cls()
        s = RangeSubscription(Interval(0, 1))
        index.add(s)
        with pytest.raises(ValueError):
            index.add(s)

    def test_empty(self, cls):
        assert cls().match(0.0) == []


@given(
    st.lists(
        st.tuples(st.integers(-30, 30), st.integers(0, 20)),
        min_size=1,
        max_size=50,
    ),
    st.lists(st.integers(-35, 55), min_size=1, max_size=12),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_all_indexes_agree(raw, probes, data):
    subscriptions = [
        RangeSubscription(Interval(float(lo), float(lo + width))) for lo, width in raw
    ]
    indexes = [cls() for cls in INDEX_CLASSES]
    for s in subscriptions:
        for index in indexes:
            index.add(s)
    removals = data.draw(st.integers(0, len(subscriptions) // 2))
    live = list(subscriptions)
    for __ in range(removals):
        victim = live.pop(data.draw(st.integers(0, len(live) - 1)))
        for index in indexes:
            index.remove(victim)
    for x in probes:
        want = ids([s for s in live if s.matches(x)])
        for index in indexes:
            assert ids(index.match(float(x))) == want, index.name


class TestSSIFastPath:
    def test_common_intersection_reports_whole_group(self):
        index = SSIRangeIndex()
        subs = [RangeSubscription(Interval(0.0, 100.0 + i)) for i in range(50)]
        for s in subs:
            index.add(s)
        assert index.group_count == 1
        assert ids(index.match(50.0)) == ids(subs)

    def test_left_tail_scan_is_partial(self):
        index = SSIRangeIndex()
        # All share [40, 60]; left endpoints vary.
        subs = [RangeSubscription(Interval(float(lo), 60.0)) for lo in range(0, 40, 4)]
        for s in subs:
            index.add(s)
        matched = index.match(10.0)
        assert ids(matched) == ids([s for s in subs if s.range.lo <= 10.0])

    def test_group_count_tracks_clusters(self):
        index = SSIRangeIndex()
        for anchor in (10.0, 200.0, 3_000.0):
            for i in range(20):
                index.add(RangeSubscription(Interval(anchor - 1 - i * 0.01, anchor + 1)))
        assert index.group_count <= 6  # (1 + eps) * 3


class TestHotspotRangeIndex:
    def test_coverage_and_bookkeeping(self):
        index = HotspotRangeIndex(alpha=0.1)
        clustered = [RangeSubscription(Interval(9.0, 11.0)) for __ in range(40)]
        scattered = [
            RangeSubscription(Interval(100.0 + i * 50, 101.0 + i * 50)) for i in range(10)
        ]
        for s in clustered + scattered:
            index.add(s)
        index.validate()
        assert index.hotspot_coverage > 0.7
        assert sorted(s.qid for s in index.match(10.0)) == sorted(s.qid for s in clustered)
        assert [s.qid for s in index.match(150.5)] == [scattered[1].qid]

    def test_demote_keeps_matching_correct(self):
        index = HotspotRangeIndex(alpha=0.3)
        cluster = [RangeSubscription(Interval(0.0, 1.0)) for __ in range(5)]
        for s in cluster:
            index.add(s)
        # Dilute until the cluster demotes to scattered.
        extras = [
            RangeSubscription(Interval(1_000.0 + i * 10, 1_000.5 + i * 10))
            for i in range(40)
        ]
        for s in extras:
            index.add(s)
        index.validate()
        assert sorted(s.qid for s in index.match(0.5)) == sorted(s.qid for s in cluster)
