"""Tests for weighted 1-D k-means: DP optimality (vs brute force),
Lloyd quality, and the agglomerative segment coarsening."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histogram.kmeans import (
    agglomerate_segments,
    contiguous_partition_dp,
    kmeans_1d_dp,
    kmeans_1d_lloyd,
)


def brute_force_cost(values, weights, k):
    """Best contiguous-partition cost by trying every cut placement."""
    m = len(values)
    k = min(k, m)
    best = float("inf")
    for cuts in itertools.combinations(range(1, m), k - 1):
        cuts = (0,) + cuts + (m,)
        total = 0.0
        for a, b in zip(cuts, cuts[1:]):
            w = sum(weights[a:b])
            if w == 0:
                continue
            c = sum(weights[i] * values[i] for i in range(a, b)) / w
            total += sum(weights[i] * (values[i] - c) ** 2 for i in range(a, b))
        best = min(best, total)
    return best


class TestDP:
    def test_k_equals_m_zero_cost(self):
        result = kmeans_1d_dp([1.0, 5.0, 9.0], [1.0, 1.0, 1.0], 3)
        assert result.cost == pytest.approx(0.0)
        assert result.centers == (1.0, 5.0, 9.0)

    def test_obvious_two_clusters(self):
        values = [0.0, 0.1, 0.2, 10.0, 10.1]
        result = kmeans_1d_dp(values, [1.0] * 5, 2)
        assert result.cuts == (0, 3, 5)

    def test_weights_shift_centers(self):
        result = kmeans_1d_dp([0.0, 10.0], [9.0, 1.0], 1)
        assert result.centers[0] == pytest.approx(1.0)

    def test_k_larger_than_m_clipped(self):
        result = kmeans_1d_dp([1.0, 2.0], [1.0, 1.0], 10)
        assert result.k == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            kmeans_1d_dp([], [], 1)
        with pytest.raises(ValueError):
            kmeans_1d_dp([1.0], [1.0, 2.0], 1)
        with pytest.raises(ValueError):
            kmeans_1d_dp([2.0, 1.0], [1.0, 1.0], 1)  # unsorted
        with pytest.raises(ValueError):
            kmeans_1d_dp([1.0], [-1.0], 1)
        with pytest.raises(ValueError):
            kmeans_1d_dp([1.0], [1.0], 0)

    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=9),
        st.lists(st.integers(0, 5), min_size=9, max_size=9),
        st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_dp_matches_bruteforce(self, raw_values, raw_weights, k):
        values = sorted(float(v) for v in raw_values)
        weights = [float(w) for w in raw_weights[: len(values)]]
        result = kmeans_1d_dp(values, weights, k)
        assert result.cost == pytest.approx(
            brute_force_cost(values, weights, k), abs=1e-7
        )

    def test_contiguous_dp_on_unsorted_values(self):
        # Histogram use case: x-ordered, non-monotone values.
        values = [5.0, 5.1, 0.0, 0.2, 5.0]
        result = contiguous_partition_dp(values, [1.0] * 5, 3)
        assert result.cuts == (0, 2, 4, 5)


class TestLloyd:
    def test_never_beats_dp(self):
        values = sorted([0.0, 0.5, 3.0, 3.5, 9.0, 9.5, 20.0])
        weights = [1.0, 2.0, 1.0, 0.5, 3.0, 1.0, 1.0]
        for k in (1, 2, 3, 4):
            dp = kmeans_1d_dp(values, weights, k)
            lloyd = kmeans_1d_lloyd(values, weights, k)
            assert lloyd.cost >= dp.cost - 1e-9

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=30),
        st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_lloyd_contiguous_and_sane(self, raw, k):
        values = sorted(float(v) for v in raw)
        weights = [1.0] * len(values)
        result = kmeans_1d_lloyd(values, weights, k)
        assert result.cuts[0] == 0 and result.cuts[-1] == len(values)
        assert all(a <= b for a, b in zip(result.cuts, result.cuts[1:]))
        dp = kmeans_1d_dp(values, weights, k)
        assert result.cost >= dp.cost - 1e-9
        # Lloyd is a local-optimum heuristic; it must still never exceed the
        # trivial single-cluster cost.
        single = kmeans_1d_dp(values, weights, 1)
        assert result.cost <= single.cost + 1e-9

    def test_all_zero_weights(self):
        result = kmeans_1d_lloyd([1.0, 2.0, 3.0], [0.0, 0.0, 0.0], 2)
        assert result.cost == 0.0


class TestAgglomerate:
    def test_noop_below_target(self):
        values, weights, cuts = agglomerate_segments([1.0, 2.0], [1.0, 1.0], 5)
        assert values == [1.0, 2.0]
        assert cuts == [0, 1, 2]

    def test_merges_equal_neighbours_first(self):
        values = [1.0, 1.0, 50.0, 1.0, 1.0]
        weights = [1.0] * 5
        merged, __, cuts = agglomerate_segments(values, weights, 3)
        assert len(merged) == 3
        assert 50.0 in merged  # the spike survives

    def test_weighted_means_preserved(self):
        values = [2.0, 4.0]
        weights = [1.0, 3.0]
        merged, merged_w, cuts = agglomerate_segments(values, weights, 1)
        assert merged == [pytest.approx(3.5)]
        assert merged_w == [4.0]
        assert cuts == [0, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            agglomerate_segments([1.0], [1.0, 2.0], 1)
        with pytest.raises(ValueError):
            agglomerate_segments([1.0], [1.0], 0)

    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=40),
        st.integers(1, 12),
    )
    @settings(max_examples=60)
    def test_structure_preserved(self, raw, target):
        values = [float(v) for v in raw]
        weights = [1.0] * len(values)
        merged, merged_w, cuts = agglomerate_segments(values, weights, target)
        assert len(merged) == min(target, len(values))
        assert cuts[0] == 0 and cuts[-1] == len(values)
        assert all(a < b for a, b in zip(cuts, cuts[1:]))
        assert sum(merged_w) == pytest.approx(sum(weights))
        # Total weighted mass of values is preserved.
        assert sum(v * w for v, w in zip(merged, merged_w)) == pytest.approx(
            sum(v * w for v, w in zip(values, weights))
        )
