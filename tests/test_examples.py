"""Smoke tests: every shipped example runs end to end.

These guard the examples (and the README-facing API surface) against
drift; each example's internal assertions also run.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_complete():
    assert len(EXAMPLES) >= 6
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_readme_quickstart_snippet():
    """The code block shown in README.md must keep working verbatim."""
    from repro import Interval, HotspotTracker, canonical_stabbing_partition
    from repro.engine import BandJoinQuery, TableS, TableR
    from repro.operators import BJSSI

    ranges = [Interval(9.8, 10.4), Interval(9.9, 10.2), Interval(55.0, 55.5)]
    partition = canonical_stabbing_partition(ranges)
    assert partition.size == 2

    tracker = HotspotTracker(alpha=0.25)
    for r in ranges:
        tracker.insert(r)
    assert 0.0 <= tracker.hotspot_coverage <= 1.0

    table_s, table_r = TableS(), TableR()
    engine = BJSSI(table_s, table_r)
    engine.add_query(BandJoinQuery(Interval(-0.5, 0.5)))
    table_s.add(b=100.0, c=0.0)
    new_results = engine.process_r(table_r.new_row(a=0.0, b=99.8))
    assert sum(len(v) for v in new_results.values()) == 1
