"""Tests for the fuzzer's op model and seeded sequence generator."""

import pytest

from repro.check import ops as op_mod
from repro.check.ops import (
    FuzzConfig,
    Op,
    generate_ops,
    ops_from_json,
    ops_to_json,
)
from repro.check.oracles import ModelState


class TestOp:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Op("teleport", 0)

    def test_json_round_trip(self):
        op = Op(op_mod.SUB_SELECT, 7, (1.0, 2.0, 3.5, 4.0))
        assert Op.from_json(op.to_json()) == op

    def test_sequence_json_round_trip(self):
        ops = generate_ops(FuzzConfig(seed=3, n_ops=200))
        assert ops_from_json(ops_to_json(ops)) == ops

    def test_from_json_defaults(self):
        assert Op.from_json({"kind": op_mod.DELETE_R, "key": 4}) == Op(
            op_mod.DELETE_R, 4
        )


class TestGenerateOps:
    def test_deterministic_per_seed(self):
        config = FuzzConfig(seed=11, n_ops=500)
        assert generate_ops(config) == generate_ops(config)

    def test_seeds_differ(self):
        assert generate_ops(FuzzConfig(seed=0, n_ops=300)) != generate_ops(
            FuzzConfig(seed=1, n_ops=300)
        )

    def test_requested_length(self):
        assert len(generate_ops(FuzzConfig(seed=2, n_ops=123))) == 123

    def test_every_op_legal_in_order(self):
        """Generated sequences are well-formed: each op is legal against the
        model state produced by its predecessors (no dangling deletes, no id
        reuse, no inverted intervals)."""
        model = ModelState()
        for op in generate_ops(FuzzConfig(seed=5, n_ops=2_000)):
            assert model.is_legal(op), op
            model.apply(op)

    def test_live_set_caps_respected(self):
        config = FuzzConfig(
            seed=7, n_ops=2_000, max_live_intervals=20, max_live_rows=10,
            max_live_queries=5,
        )
        model = ModelState()
        for op in generate_ops(config):
            model.apply(op)
            assert len(model.intervals) <= config.max_live_intervals
            assert len(model.r_rows) <= config.max_live_rows
            assert len(model.s_rows) <= config.max_live_rows
            assert model.subscription_count() <= config.max_live_queries

    def test_engine_fraction_zero_means_interval_domain_only(self):
        ops = generate_ops(FuzzConfig(seed=4, n_ops=400, engine_fraction=0.0))
        assert all(op.kind in op_mod.INTERVAL_KINDS for op in ops)

    def test_engine_fraction_one_means_engine_domain_only(self):
        ops = generate_ops(FuzzConfig(seed=4, n_ops=400, engine_fraction=1.0))
        assert all(op.kind in op_mod.ENGINE_KINDS for op in ops)

    def test_mixed_run_covers_both_domains_and_deletes(self):
        kinds = {op.kind for op in generate_ops(FuzzConfig(seed=0, n_ops=3_000))}
        assert op_mod.INSERT_INTERVAL in kinds
        assert op_mod.DELETE_INTERVAL in kinds
        assert op_mod.INSERT_R in kinds and op_mod.INSERT_S in kinds
        assert op_mod.DELETE_R in kinds or op_mod.DELETE_S in kinds
        assert op_mod.SUB_BAND in kinds or op_mod.SUB_SELECT in kinds

    def test_with_ops_rewrites_only_length(self):
        config = FuzzConfig(seed=9, churn=0.7)
        resized = config.with_ops(50)
        assert resized.n_ops == 50
        assert resized.seed == 9 and resized.churn == 0.7
