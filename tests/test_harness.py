"""Tests for the benchmark measurement harness."""

import pytest

from repro.bench.harness import (
    Series,
    assert_decreasing,
    assert_dominates,
    assert_flat,
    geometric_sweep,
    measure_amortized_update_ns,
    measure_event_time_us,
    measure_throughput,
    print_figure,
)


class TestSeries:
    def test_add_and_lookup(self):
        series = Series("s")
        series.add(1, 10.0)
        series.add(2, 20.0)
        assert series.y_at(2) == 20.0
        with pytest.raises(ValueError):
            series.y_at(99)


class TestMeasurement:
    def test_throughput_positive(self):
        events = list(range(1000))
        rate = measure_throughput(lambda e: e + 1, events)
        assert rate > 0

    def test_throughput_requires_events(self):
        with pytest.raises(ValueError):
            measure_throughput(lambda e: e, [])

    def test_event_time_inverse_of_throughput(self):
        events = list(range(200))
        us = measure_event_time_us(lambda e: e, events)
        assert us > 0

    def test_amortized_update(self):
        applied = []
        ns = measure_amortized_update_ns(applied.append, [("insert", 1)] * 100)
        assert ns > 0
        assert len(applied) == 100
        with pytest.raises(ValueError):
            measure_amortized_update_ns(applied.append, [])


class TestAssertions:
    def test_dominates_pass_and_fail(self):
        fast = Series("fast", [1, 2], [100.0, 100.0])
        slow = Series("slow", [1, 2], [10.0, 10.0])
        assert_dominates(fast, slow, factor=5.0)
        with pytest.raises(AssertionError):
            assert_dominates(slow, fast)

    def test_dominates_requires_shared_x(self):
        a = Series("a", [1], [1.0])
        b = Series("b", [2], [1.0])
        with pytest.raises(AssertionError):
            assert_dominates(a, b)

    def test_flat(self):
        stable = Series("s", [1, 2, 3], [100.0, 95.0, 90.0])
        assert_flat(stable, max_drop=0.8)
        with pytest.raises(AssertionError):
            assert_flat(Series("s", [1, 2], [100.0, 10.0]), max_drop=0.8)

    def test_decreasing(self):
        down = Series("d", [1, 2, 3], [9.0, 5.0, 1.0])
        assert_decreasing(down)
        with pytest.raises(AssertionError):
            assert_decreasing(Series("d", [1, 2], [1.0, 9.0]))


class TestSweep:
    def test_geometric_endpoints(self):
        sweep = geometric_sweep(10, 10_000, 4)
        assert sweep[0] == 10 and sweep[-1] == 10_000
        assert sweep == sorted(set(sweep))

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_sweep(10, 5, 3)
        with pytest.raises(ValueError):
            geometric_sweep(10, 100, 1)


def test_print_figure_smoke(capsys):
    series = [Series("a", [1, 2], [10.0, 20.0]), Series("b", [1, 2], [1.0, 2.0])]
    print_figure("Demo", "x", series)
    out = capsys.readouterr().out
    assert "Demo" in out and "a" in out and "b" in out
