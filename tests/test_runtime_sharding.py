"""Tests for the runtime's shard router and sharded facade."""

import random

import pytest

from repro.core.intervals import Interval
from repro.engine.queries import BandJoinQuery, SelectJoinQuery
from repro.engine.system import ContinuousQuerySystem
from repro.engine.table import RTuple, STuple
from repro.runtime.sharding import (
    ShardRouter,
    ShardedContinuousQuerySystem,
    merge_deltas,
    scaled_alpha,
)


def select_query(lo, hi, a_lo=0.0, a_hi=10_000.0):
    return SelectJoinQuery(Interval(a_lo, a_hi), Interval(lo, hi))


class TestShardRouter:
    def test_value_ranges_tile_the_domain(self):
        router = ShardRouter(4, domain_lo=0.0, domain_hi=100.0)
        ranges = router.value_ranges()
        assert [r.index for r in ranges] == [0, 1, 2, 3]
        assert ranges[0].lo == 0.0 and ranges[-1].hi == 100.0
        for prev, cur in zip(ranges, ranges[1:]):
            assert prev.hi == cur.lo

    def test_band_ranges_tile_the_difference_domain(self):
        router = ShardRouter(4, domain_lo=0.0, domain_hi=100.0)
        ranges = router.band_ranges()
        assert ranges[0].lo == -100.0 and ranges[-1].hi == 100.0
        for prev, cur in zip(ranges, ranges[1:]):
            assert prev.hi == cur.lo

    def test_out_of_domain_values_clamp_to_edge_shards(self):
        router = ShardRouter(4, domain_lo=0.0, domain_hi=100.0)
        assert router.shard_for_value(-5.0) == 0
        assert router.shard_for_value(1e9) == 3

    def test_select_query_reaches_every_overlapping_shard(self):
        rng = random.Random(3)
        router = ShardRouter(6, domain_lo=0.0, domain_hi=600.0)
        ranges = router.value_ranges()
        for __ in range(300):
            lo = rng.uniform(-50, 650)
            query = select_query(lo, lo + rng.uniform(0, 250))
            placed = set(router.shards_for_query(query))
            for shard in ranges:
                # Outermost ranges extend to +-infinity for routing.
                s_lo = float("-inf") if shard.index == 0 else shard.lo
                s_hi = float("inf") if shard.index == len(ranges) - 1 else shard.hi
                overlaps = query.range_c.hi >= s_lo and query.range_c.lo < s_hi
                if overlaps:
                    assert shard.index in placed
            assert placed == set(range(min(placed), max(placed) + 1))

    def test_band_query_routes_to_single_midpoint_shard(self):
        router = ShardRouter(4, domain_lo=0.0, domain_hi=100.0)
        query = BandJoinQuery(Interval(-10.0, 10.0))  # midpoint 0 -> shard 2
        assert router.shards_for_query(query) == [2]

    def test_event_and_matching_query_are_co_located(self):
        """Any S row lands in a shard where every query selecting it lives."""
        rng = random.Random(11)
        router = ShardRouter(5, domain_lo=0.0, domain_hi=1000.0)
        for __ in range(300):
            lo = rng.uniform(0, 1000)
            query = select_query(lo, lo + rng.uniform(0, 100))
            c = rng.uniform(0, 1000)
            if query.range_c.contains(c):
                assert router.shard_for_value(c) in router.shards_for_query(query)

    def test_route_event_flags(self):
        from repro.engine.events import DataEvent, EventKind

        router = ShardRouter(3, domain_lo=0.0, domain_hi=300.0)
        s_event = DataEvent(EventKind.INSERT, "S", STuple(0, 5.0, 150.0))
        route = router.route_event(s_event)
        assert route.shards == (0, 1, 2)
        assert route.select_shard == 1
        assert route.flags(1, "S") == (True, True)
        assert route.flags(0, "S") == (False, False)
        r_event = DataEvent(EventKind.INSERT, "R", RTuple(0, 5.0, 150.0))
        route = router.route_event(r_event)
        assert route.select_shard is None
        assert route.flags(2, "R") == (True, True)

    def test_unsupported_query_type(self):
        router = ShardRouter(2)
        with pytest.raises(TypeError):
            router.shards_for_query("nope")

    def test_stats_track_load_and_imbalance(self):
        router = ShardRouter(2, domain_lo=0.0, domain_hi=100.0)
        query = select_query(10.0, 20.0)
        router.note_query(query, router.shards_for_query(query), +1)
        stats = router.stats()
        assert stats["select_queries_per_shard"] == [1, 0]
        assert stats["select_query_imbalance"] == 2.0  # all load on 1 of 2


def test_scaled_alpha_keeps_absolute_threshold():
    assert scaled_alpha(0.01, 8) == pytest.approx(0.08)
    assert scaled_alpha(0.3, 8) == 1.0  # capped
    assert scaled_alpha(None, 8) is None


def test_merge_deltas_is_order_independent():
    q = select_query(0, 10)
    a = {q: [STuple(2, 5.0, 3.0)]}
    b = {q: [STuple(1, 4.0, 2.0)]}
    assert merge_deltas([a, b]) == merge_deltas([b, a])
    assert [row.sid for row in merge_deltas([a, b])[q]] == [1, 2]


class TestShardedFacadeEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 5])
    @pytest.mark.parametrize("alpha", [None, 0.05])
    def test_matches_unsharded_system(self, num_shards, alpha):
        rng = random.Random(42)
        plain = ContinuousQuerySystem(alpha=alpha)
        sharded = ShardedContinuousQuerySystem(
            num_shards=num_shards, alpha=alpha, domain_lo=0.0, domain_hi=1000.0
        )
        for qid in range(60):
            if qid % 3 == 0:
                band_lo = rng.uniform(-40, 40)
                band = Interval(band_lo, band_lo + rng.uniform(0, 30))
                make = lambda: BandJoinQuery(band)
            else:
                c_lo, a_lo = rng.uniform(0, 1000), rng.uniform(0, 1000)
                range_a = Interval(a_lo, a_lo + 300)
                range_c = Interval(c_lo, c_lo + rng.uniform(0, 200))
                make = lambda: SelectJoinQuery(range_a, range_c)
            q1, q2 = make(), make()
            plain.subscribe(q1)
            sharded.subscribe(q2)

        def norm(deltas):
            return sorted(
                (sorted(r.sid if isinstance(r, STuple) else r.rid for r in rows))
                for rows in deltas.values()
                if rows
            )

        live_r, live_s = [], []
        for step in range(250):
            roll = rng.random()
            if roll < 0.15 and live_r:
                row = live_r.pop(rng.randrange(len(live_r)))
                plain.delete_r(row)
                sharded.delete_r(row)
            elif roll < 0.3 and live_s:
                row = live_s.pop(rng.randrange(len(live_s)))
                plain.delete_s(row)
                sharded.delete_s(row)
            elif roll < 0.65:
                row = RTuple(step, rng.uniform(0, 1000), rng.uniform(0, 1000))
                live_r.append(row)
                assert norm(plain.insert_r_row(row)) == norm(sharded.insert_r_row(row))
            else:
                row = STuple(step, rng.uniform(0, 1000), rng.uniform(0, 1000))
                live_s.append(row)
                assert norm(plain.insert_s_row(row)) == norm(sharded.insert_s_row(row))
        assert sharded.events_processed == plain.events_processed == 250

    def test_mid_stream_subscribe_sees_prior_state(self):
        sharded = ShardedContinuousQuerySystem(
            num_shards=4, alpha=None, domain_lo=0.0, domain_hi=100.0
        )
        sharded.insert_s(b=10.0, c=50.0)
        sharded.insert_s(b=10.0, c=75.0)
        query = sharded.subscribe(select_query(0.0, 100.0, 0.0, 100.0))
        deltas = sharded.insert_r(a=5.0, b=10.0)
        assert len(deltas[query]) == 2  # both pre-subscribe S rows join

    def test_unsubscribe_removes_from_all_shards(self):
        sharded = ShardedContinuousQuerySystem(
            num_shards=4, alpha=None, domain_lo=0.0, domain_hi=100.0
        )
        query = sharded.subscribe(select_query(0.0, 100.0, 0.0, 100.0))
        assert sharded.subscription_count == 1
        sharded.unsubscribe(query)
        assert sharded.subscription_count == 0
        assert all(shard.query_count == 0 for shard in sharded.shards)
        sharded.insert_s(b=1.0, c=50.0)
        assert sharded.insert_r(a=1.0, b=1.0) == {}

    def test_deletions_count_as_processed_events(self):
        sharded = ShardedContinuousQuerySystem(num_shards=2, alpha=None)
        sharded.insert_r(a=1.0, b=2.0)
        row = next(iter(sharded.shards[0].table_r))
        sharded.delete_r(row)
        assert sharded.events_processed == 2
