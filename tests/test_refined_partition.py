"""Tests for the refined Appendix B algorithm: size bound, single-group
update locality, and reconstruction equivalence with the greedy sweep."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.core.refined_partition import RefinedStabbingPartition
from repro.core.stabbing import canonical_stabbing_partition, stabbing_number

from conftest import fresh_intervals, int_interval_strategy


def composition(groups):
    """Multiset-of-multisets view of a partition, independent of order."""
    return sorted(sorted((iv.lo, iv.hi) for iv in group) for group in groups)


class TestBasics:
    def test_empty(self):
        partition = RefinedStabbingPartition(seed=1)
        assert len(partition) == 0

    def test_initial_build_is_canonical(self):
        intervals = [Interval(0, 10), Interval(2, 8), Interval(20, 30)]
        partition = RefinedStabbingPartition(intervals, seed=1)
        canon = canonical_stabbing_partition(intervals)
        assert composition(partition.groups) == composition(
            g.items for g in canon.groups
        )

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            RefinedStabbingPartition(epsilon=-1)

    def test_duplicate_insert_rejected(self):
        partition = RefinedStabbingPartition(seed=1)
        interval = Interval(0, 1)
        partition.insert(interval)
        with pytest.raises(ValueError):
            partition.insert(interval)

    def test_group_of(self):
        intervals = [Interval(0, 10), Interval(2, 8)]
        partition = RefinedStabbingPartition(intervals, seed=1)
        assert partition.group_of(intervals[0]) is partition.group_of(intervals[1])
        assert intervals[0] in partition


class TestReconstruction:
    @given(st.lists(int_interval_strategy(), min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_reconstruction_equals_greedy(self, intervals):
        intervals = fresh_intervals(intervals)
        partition = RefinedStabbingPartition(intervals, epsilon=1.0, seed=3)
        partition._reconstruct()
        canon = canonical_stabbing_partition(intervals)
        assert composition(partition.groups) == composition(
            g.items for g in canon.groups
        )

    @given(
        st.lists(int_interval_strategy(), min_size=1, max_size=50),
        st.lists(int_interval_strategy(), min_size=0, max_size=30),
        st.lists(st.integers(0, 10_000), max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_reconstruction_after_mixed_updates(self, initial, inserts, deletes):
        initial = fresh_intervals(initial)
        inserts = fresh_intervals(inserts)
        # Large epsilon so no automatic reconstruction interferes; we then
        # force one and compare with greedy on the exact live multiset.
        partition = RefinedStabbingPartition(initial, epsilon=1000.0, seed=5)
        live = list(initial)
        for interval in inserts:
            partition.insert(interval)
            live.append(interval)
        for pick in deletes:
            if not live:
                break
            victim = live.pop(pick % len(live))
            partition.delete(victim)
        partition._reconstruct()
        canon = canonical_stabbing_partition(live)
        assert composition(partition.groups) == composition(
            g.items for g in canon.groups
        )

    def test_reconstruction_counters(self):
        rng = random.Random(4)
        intervals = [
            Interval(x, x + 2) for x in (rng.uniform(0, 30) for __ in range(100))
        ]
        partition = RefinedStabbingPartition(intervals, epsilon=1.0, seed=6)
        before = partition.reconstruction_count
        for i in range(50):
            partition.insert(Interval(rng.uniform(0, 30), rng.uniform(30, 60)))
        assert partition.reconstruction_count > before
        assert partition.split_count + partition.join_count > 0


class TestSizeBound:
    @given(
        st.lists(int_interval_strategy(), min_size=1, max_size=60),
        st.lists(st.integers(0, 10_000), max_size=50),
        st.sampled_from([0.5, 1.0, 3.0]),
    )
    @settings(max_examples=50, deadline=None)
    def test_size_bound_under_random_updates(self, intervals, picks, epsilon):
        intervals = fresh_intervals(intervals)
        partition = RefinedStabbingPartition(epsilon=epsilon, seed=7)
        live = []
        rng_ops = iter(picks)
        for interval in intervals:
            partition.insert(interval)
            live.append(interval)
            pick = next(rng_ops, None)
            if pick is not None and live and pick % 3 == 0:
                victim = live.pop(pick % len(live))
                partition.delete(victim)
            partition.validate()
            tau = stabbing_number(live)
            assert len(partition) <= (1.0 + epsilon) * tau + 1e-9

    def test_total_items_preserved(self):
        rng = random.Random(8)
        partition = RefinedStabbingPartition(epsilon=1.0, seed=9)
        live = []
        for __ in range(400):
            lo = rng.uniform(0, 100)
            interval = Interval(lo, lo + rng.uniform(0, 8))
            partition.insert(interval)
            live.append(interval)
            if rng.random() < 0.45:
                victim = live.pop(rng.randrange(len(live)))
                partition.delete(victim)
        assert partition.total_items() == len(live)
        partition.validate()


class TestUpdateLocality:
    def test_insert_touches_one_new_group(self):
        intervals = [Interval(0, 10), Interval(20, 30)]
        # Huge epsilon: no reconstruction, pure singleton insertion.
        partition = RefinedStabbingPartition(intervals, epsilon=1000.0, seed=10)
        groups_before = set(id(g) for g in partition.groups)
        partition.insert(Interval(5, 25))
        groups_after = set(id(g) for g in partition.groups)
        assert len(groups_after - groups_before) == 1
        assert groups_before <= groups_after

    def test_delete_touches_only_its_group(self):
        a, b, c = Interval(0, 10), Interval(2, 8), Interval(20, 30)
        partition = RefinedStabbingPartition([a, b, c], epsilon=1000.0, seed=11)
        target = partition.group_of(a)
        others = [g for g in partition.groups if g is not target]
        sizes = [g.size for g in others]
        partition.delete(a)
        assert [g.size for g in others] == sizes
