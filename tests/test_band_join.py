"""Tests for the four band-join strategies: equivalence with the brute-force
oracle under randomized workloads, plus strategy-specific behaviours."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.core.refined_partition import RefinedStabbingPartition
from repro.engine.queries import BandJoinQuery, band_interval, brute_force_band_join
from repro.engine.table import TableR, TableS
from repro.operators.band_join import (
    BJDOuter,
    BJMergeJoin,
    BJQOuter,
    BJSSI,
    make_band_strategies,
)

STRATEGY_CLASSES = [BJQOuter, BJDOuter, BJMergeJoin, BJSSI]


def norm(results):
    return {
        query.qid: sorted(row.sid if hasattr(row, "sid") else row.rid for row in rows)
        for query, rows in results.items()
    }


def make_workload(seed, n_s=120, n_r=40, n_q=60, domain=60.0, band_span=10.0):
    rng = random.Random(seed)
    table_s = TableS(order=4)
    table_r = TableR(order=4)
    for __ in range(n_s):
        table_s.add(rng.uniform(0, domain), rng.uniform(0, domain))
    for __ in range(n_r):
        table_r.add(rng.uniform(0, domain), rng.uniform(0, domain))
    queries = []
    for __ in range(n_q):
        lo = rng.uniform(-band_span, band_span)
        queries.append(BandJoinQuery(Interval(lo, lo + rng.uniform(0, band_span / 2))))
    return rng, table_s, table_r, queries


@pytest.mark.parametrize("cls", STRATEGY_CLASSES)
class TestAgainstOracle:
    def test_process_r_matches_bruteforce(self, cls):
        rng, table_s, table_r, queries = make_workload(seed=101)
        strategy = cls(table_s, table_r)
        for query in queries:
            strategy.add_query(query)
        for __ in range(30):
            r = table_r.new_row(rng.uniform(0, 60), rng.uniform(0, 60))
            assert norm(strategy.process_r(r)) == norm(
                brute_force_band_join(queries, r, table_s)
            )

    def test_process_s_matches_bruteforce(self, cls):
        rng, table_s, table_r, queries = make_workload(seed=102)
        strategy = cls(table_s, table_r)
        for query in queries:
            strategy.add_query(query)
        for __ in range(20):
            s = table_s.new_row(rng.uniform(0, 60), rng.uniform(0, 60))
            want = {
                q.qid: sorted(r.rid for r in table_r if q.matches(r, s))
                for q in queries
                if any(q.matches(r, s) for r in table_r)
            }
            assert norm(strategy.process_s(s)) == want

    def test_query_removal_respected(self, cls):
        rng, table_s, table_r, queries = make_workload(seed=103)
        strategy = cls(table_s, table_r)
        for query in queries:
            strategy.add_query(query)
        removed = queries[::2]
        for query in removed:
            strategy.remove_query(query)
        kept = [q for q in queries if q not in removed]
        assert strategy.query_count == len(kept)
        r = table_r.new_row(30.0, 30.0)
        assert norm(strategy.process_r(r)) == norm(
            brute_force_band_join(kept, r, table_s)
        )

    def test_empty_s_table(self, cls):
        strategy = cls(TableS(), TableR())
        strategy.add_query(BandJoinQuery(Interval(-1, 1)))
        r = strategy.table_r.new_row(0.0, 0.0)
        assert strategy.process_r(r) == {}

    def test_no_queries(self, cls):
        table_s = TableS()
        table_s.add(1.0, 1.0)
        strategy = cls(table_s)
        r = strategy.table_r.new_row(0.0, 1.0)
        assert strategy.process_r(r) == {}

    def test_duplicate_query_id_rejected(self, cls):
        strategy = cls(TableS())
        query = BandJoinQuery(Interval(0, 1))
        strategy.add_query(query)
        with pytest.raises(ValueError):
            strategy.add_query(query)


class TestBJSSISpecifics:
    def test_boundary_band_exactly_touching(self):
        # s.b - r.b lands exactly on a band endpoint: closed semantics.
        table_s = TableS(order=4)
        s = table_s.add(10.0, 0.0)
        strategy = BJSSI(table_s)
        query = BandJoinQuery(Interval(2.0, 5.0))
        strategy.add_query(query)
        assert norm(strategy.process_r(strategy.table_r.new_row(0.0, 8.0))) == {
            query.qid: [s.sid]
        }  # 10 - 8 = 2 == band.lo
        assert norm(strategy.process_r(strategy.table_r.new_row(0.0, 5.0))) == {
            query.qid: [s.sid]
        }  # 10 - 5 = 5 == band.hi
        assert strategy.process_r(strategy.table_r.new_row(0.0, 4.9)) == {}

    def test_duplicate_s_values(self):
        table_s = TableS(order=4)
        rows = [table_s.add(10.0, float(i)) for i in range(5)]
        strategy = BJSSI(table_s)
        query = BandJoinQuery(Interval(0.0, 0.0))  # degenerate band
        strategy.add_query(query)
        got = norm(strategy.process_r(strategy.table_r.new_row(0.0, 10.0)))
        assert got == {query.qid: sorted(r.sid for r in rows)}

    def test_group_count_tracks_stabbing_number(self):
        table_s = TableS()
        strategy = BJSSI(table_s)
        # Two clusters of bands -> at most 2 (1+eps)-approximate groups.
        for i in range(20):
            strategy.add_query(BandJoinQuery(Interval(0.0, 5.0 + i * 0.01)))
        for i in range(20):
            strategy.add_query(BandJoinQuery(Interval(100.0, 105.0 + i * 0.01)))
        assert strategy.group_count <= 4  # (1 + 1.0) * tau with tau = 2

    def test_refined_partition_backend(self):
        rng, table_s, table_r, queries = make_workload(seed=104)
        partition = RefinedStabbingPartition(
            epsilon=1.0, interval_of=band_interval, seed=5
        )
        strategy = BJSSI(table_s, table_r, partition=partition)
        for query in queries:
            strategy.add_query(query)
        r = table_r.new_row(rng.uniform(0, 60), rng.uniform(0, 60))
        assert norm(strategy.process_r(r)) == norm(
            brute_force_band_join(queries, r, table_s)
        )


@given(st.integers(0, 10_000), st.integers(1, 40), st.integers(0, 80))
@settings(max_examples=25, deadline=None)
def test_all_strategies_agree_randomized(seed, n_q, n_s):
    rng = random.Random(seed)
    table_s = TableS(order=4)
    table_r = TableR(order=4)
    for __ in range(n_s):
        table_s.add(float(rng.randrange(0, 30)), 0.0)
    queries = []
    for __ in range(n_q):
        lo = float(rng.randrange(-10, 10))
        queries.append(BandJoinQuery(Interval(lo, lo + rng.randrange(0, 6))))
    strategies = make_band_strategies(table_s, table_r)
    for strategy in strategies.values():
        for query in queries:
            strategy.add_query(query)
    for __ in range(5):
        r = table_r.new_row(0.0, float(rng.randrange(0, 30)))
        want = norm(brute_force_band_join(queries, r, table_s))
        for name, strategy in strategies.items():
            assert norm(strategy.process_r(r)) == want, name


def test_maintenance_under_mixed_stream():
    rng = random.Random(7)
    table_s = TableS(order=4)
    for __ in range(100):
        table_s.add(rng.uniform(0, 50), 0.0)
    strategies = make_band_strategies(table_s)
    live = []
    for step in range(300):
        if live and rng.random() < 0.45:
            query = live.pop(rng.randrange(len(live)))
            for strategy in strategies.values():
                strategy.remove_query(query)
        else:
            lo = rng.uniform(-10, 10)
            query = BandJoinQuery(Interval(lo, lo + rng.uniform(0, 4)))
            live.append(query)
            for strategy in strategies.values():
                strategy.add_query(query)
        if step % 50 == 49:
            r = TableR().new_row(0.0, rng.uniform(0, 50))
            want = norm(brute_force_band_join(live, r, table_s))
            for name, strategy in strategies.items():
                assert norm(strategy.process_r(r)) == want, name
