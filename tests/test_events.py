"""Tests for the update-event model."""

import pytest

from repro.core.intervals import Interval
from repro.engine.events import (
    DataEvent,
    EventKind,
    QueryEvent,
    insertions,
    replay_query_events,
)
from repro.engine.queries import BandJoinQuery
from repro.engine.table import TableS
from repro.operators.band_join import BJQOuter


def test_data_event_validates_relation():
    with pytest.raises(ValueError):
        DataEvent(EventKind.INSERT, "X", None)


def test_insertions_wraps_rows():
    events = list(insertions([1, 2, 3], "R"))
    assert all(e.kind is EventKind.INSERT and e.relation == "R" for e in events)
    assert [e.row for e in events] == [1, 2, 3]


def test_replay_query_events_applies_to_processor():
    strategy = BJQOuter(TableS())
    a = BandJoinQuery(Interval(0, 1))
    b = BandJoinQuery(Interval(2, 3))
    stream = [
        QueryEvent(EventKind.INSERT, a),
        QueryEvent(EventKind.INSERT, b),
        QueryEvent(EventKind.DELETE, a),
    ]
    applied = replay_query_events(stream, strategy)
    assert applied == 3
    assert strategy.query_count == 1
    assert strategy.queries == [b]
