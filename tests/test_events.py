"""Tests for the update-event model."""

import pytest

from repro.core.intervals import Interval
from repro.engine.events import (
    DataEvent,
    EventKind,
    QueryEvent,
    insertions,
    replay_data_events,
    replay_query_events,
)
from repro.engine.queries import BandJoinQuery
from repro.engine.system import ContinuousQuerySystem
from repro.engine.table import RTuple, STuple, TableS
from repro.operators.band_join import BJQOuter


def test_data_event_validates_relation():
    with pytest.raises(ValueError):
        DataEvent(EventKind.INSERT, "X", None)


def test_insertions_wraps_rows():
    events = list(insertions([1, 2, 3], "R"))
    assert all(e.kind is EventKind.INSERT and e.relation == "R" for e in events)
    assert [e.row for e in events] == [1, 2, 3]


def test_replay_data_events_applies_inserts_and_deletes():
    system = ContinuousQuerySystem(alpha=None)
    query = system.subscribe(BandJoinQuery(Interval(-0.5, 0.5)))
    s_row = STuple(0, 10.0, 3.0)
    r_row = RTuple(0, 1.0, 10.0)
    seen = []
    stream = [
        DataEvent(EventKind.INSERT, "S", s_row),
        DataEvent(EventKind.INSERT, "R", r_row),
        DataEvent(EventKind.DELETE, "S", s_row),
        DataEvent(EventKind.DELETE, "R", r_row),
    ]
    applied = replay_data_events(
        stream, system, on_result=lambda e, d: seen.append((e.kind, len(d)))
    )
    assert applied == 4
    assert system.events_processed == 4
    assert len(system.table_r) == 0 and len(system.table_s) == 0
    # The R insert joined the live S row; deletions produce no deltas.
    assert seen == [
        (EventKind.INSERT, 0),
        (EventKind.INSERT, 1),
        (EventKind.DELETE, 0),
        (EventKind.DELETE, 0),
    ]


def test_replay_data_events_rejects_query_events():
    system = ContinuousQuerySystem(alpha=None)
    stream = [QueryEvent(EventKind.INSERT, BandJoinQuery(Interval(0, 1)))]
    with pytest.raises(TypeError):
        replay_data_events(stream, system)


def test_replay_query_events_applies_to_processor():
    strategy = BJQOuter(TableS())
    a = BandJoinQuery(Interval(0, 1))
    b = BandJoinQuery(Interval(2, 3))
    stream = [
        QueryEvent(EventKind.INSERT, a),
        QueryEvent(EventKind.INSERT, b),
        QueryEvent(EventKind.DELETE, a),
    ]
    applied = replay_query_events(stream, strategy)
    assert applied == 3
    assert strategy.query_count == 1
    assert strategy.queries == [b]
