"""Self-check: the shipped tree must satisfy its own lint gate.

This is the test that keeps ``repro lint`` honest — every rule runs over
``src/repro`` exactly as CI does, and any finding not in the committed
baseline fails the suite.  It also pins the CLI contract the CI job and
docs rely on (exit codes, --list-rules, JSON shape)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    all_rules,
    lint_paths,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=cwd,
        capture_output=True,
        text=True,
        env=env,
    )


class TestRepoIsClean:
    def test_tree_passes_its_own_gate(self):
        findings = lint_paths([SRC], REPO_ROOT)
        baseline_path = REPO_ROOT / DEFAULT_BASELINE_NAME
        baseline = (
            Baseline.load(baseline_path) if baseline_path.exists() else Baseline()
        )
        delta = baseline.check(findings)
        assert delta.ok, "new lint findings:\n" + "\n".join(
            f.render() for f in delta.new
        )

    def test_cli_exits_zero_on_head(self):
        proc = run_cli("lint")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "lint clean" in proc.stdout or "baselined" in proc.stdout


class TestCliContract:
    def test_exit_nonzero_on_seeded_violation_of_each_rule(self, tmp_path):
        seeded = {
            "RA001": ("core/t1.py", "import time\nstamp = time.time()\n"),
            "RA002": ("core/t2.py", "import numpy\n"),
            "RA003": (
                "runtime/t3.py",
                "import threading\n"
                "class W:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.n = 0\n"
                "    def a(self):\n"
                "        with self._lock:\n"
                "            self.n = 1\n"
                "    def b(self):\n"
                "        return self.n\n",
            ),
            "RA004": ("workload/t4.py", "t = x.group_table()\nt.append(1)\n"),
            "RA005": ("core/t5.py", "def f(iv, x):\n    return x == iv.lo\n"),
            "RA006": ("dstruct/treap.py", "class N:\n    pass\n"),
        }
        for code, (rel, src) in seeded.items():
            target = tmp_path / code / "src" / "repro" / rel
            target.parent.mkdir(parents=True)
            target.write_text(src)
            proc = run_cli(
                "lint", "--root", str(tmp_path / code), "--select", code
            )
            assert proc.returncode == 1, (
                f"{code} did not fail the gate: {proc.stdout}{proc.stderr}"
            )
            assert code in proc.stdout

    def test_json_format_and_artifact_shape(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy\n")
        proc = run_cli("lint", "--root", str(tmp_path), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["tool"] == "repro lint"
        assert payload["summary"]["new"] >= 1
        assert any(f["rule"] == "RA002" for f in payload["findings"])

    def test_update_baseline_then_clean(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy\n")
        assert run_cli("lint", "--root", str(tmp_path)).returncode == 1
        proc = run_cli("lint", "--root", str(tmp_path), "--update-baseline")
        assert proc.returncode == 0
        assert (tmp_path / DEFAULT_BASELINE_NAME).exists()
        assert run_cli("lint", "--root", str(tmp_path)).returncode == 0

    def test_list_rules_prints_catalog(self):
        proc = run_cli("lint", "--list-rules")
        assert proc.returncode == 0
        for code in ("RA001", "RA002", "RA003", "RA004", "RA005", "RA006"):
            assert code in proc.stdout

    def test_unknown_select_fails_loudly(self):
        proc = run_cli("lint", "--select", "RA999")
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr

    def test_info_lists_analysis_subsystem(self):
        proc = run_cli("info")
        assert proc.returncode == 0
        assert "analysis" in proc.stdout
        rule_count = len(all_rules())
        assert str(rule_count) in proc.stdout


@pytest.mark.parametrize("fmt", ["human", "json"])
def test_lint_rejects_missing_path(fmt, tmp_path):
    proc = run_cli(
        "lint", "--root", str(tmp_path), "no/such/dir", "--format", fmt
    )
    assert proc.returncode == 2
    assert "no such path" in proc.stderr
