"""Tests for the Table 1 workload generators."""

import os
import random

import pytest

from repro.core.stabbing import stabbing_number
from repro.engine.queries import band_interval, range_a_interval, range_c_interval
from repro.workload import (
    WorkloadParams,
    ZipfSampler,
    clustered_intervals,
    make_band_join_queries,
    make_select_join_queries,
    make_tables,
    mixed_query_stream,
    r_insert_events,
    spread_anchors,
)
from repro.workload.params import bench_scale


class TestParams:
    def test_scaled(self):
        params = WorkloadParams(table_size=100, query_count=200).scaled(2.5)
        assert params.table_size == 250
        assert params.query_count == 500

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5
        monkeypatch.setenv("REPRO_BENCH_SCALE", "oops")
        with pytest.raises(ValueError):
            bench_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale()

    def test_domain_width(self):
        assert WorkloadParams().domain_width == 10_000.0


class TestTables:
    def test_sizes_and_domains(self):
        params = WorkloadParams(table_size=500, seed=3)
        table_r, table_s = make_tables(params)
        assert len(table_r) == 500 and len(table_s) == 500
        for row in table_s:
            assert params.domain_lo <= row.b <= params.domain_hi
            assert params.domain_lo <= row.c <= params.domain_hi

    def test_s_b_concentrated_near_mean(self):
        params = WorkloadParams(table_size=2000, seed=4)
        __, table_s = make_tables(params)
        mean = sum(row.b for row in table_s) / len(table_s)
        assert abs(mean - params.s_b_mean) < 200

    def test_deterministic_given_seed(self):
        params = WorkloadParams(table_size=50, seed=5)
        r1, s1 = make_tables(params)
        r2, s2 = make_tables(params)
        assert [(t.a, t.b) for t in r1] == [(t.a, t.b) for t in r2]
        assert [(t.b, t.c) for t in s1] == [(t.b, t.c) for t in s2]

    def test_integer_valued(self):
        params = WorkloadParams(table_size=100, seed=6, integer_valued=True)
        __, table_s = make_tables(params)
        assert all(row.b == int(row.b) for row in table_s)

    def test_join_key_grid_controls_fanout(self):
        coarse = WorkloadParams(table_size=2_000, seed=7, join_key_grid=10)
        fine = WorkloadParams(table_size=2_000, seed=7, join_key_grid=1_000)
        __, s_coarse = make_tables(coarse)
        __, s_fine = make_tables(fine)
        # Distinct join-key counts track the grid resolution.
        assert len({row.b for row in s_coarse}) <= 11
        assert len({row.b for row in s_fine}) > 100
        # Events snap to the same grid, so fan-out follows table/grid.
        events = r_insert_events(coarse, 50)
        fanout = sum(len(s_coarse.joining(b)) for __, b in events) / len(events)
        assert fanout > 50  # ~ table_size / grid = 200

    def test_join_key_grid_none_leaves_keys_free(self):
        params = WorkloadParams(table_size=500, seed=8, join_key_grid=None)
        __, table_s = make_tables(params)
        assert len({row.b for row in table_s}) > 300


class TestQueries:
    def test_select_join_count_and_ranges(self):
        params = WorkloadParams(query_count=300, seed=7)
        queries = make_select_join_queries(params)
        assert len(queries) == 300
        for query in queries:
            assert query.range_a.lo <= query.range_a.hi
            assert params.domain_lo <= query.range_c.lo
            assert query.range_c.hi <= params.domain_hi

    def test_band_join_count(self):
        params = WorkloadParams(query_count=250, seed=8)
        queries = make_band_join_queries(params)
        assert len(queries) == 250

    def test_anchored_queries_bound_stabbing_number(self):
        params = WorkloadParams(query_count=400, seed=9)
        anchors = spread_anchors(params, 12)
        queries = make_select_join_queries(params, range_c_anchors=anchors)
        assert stabbing_number(queries, range_c_interval) <= 12
        bqueries = make_band_join_queries(params, band_anchors=[-5.0, 0.0, 5.0])
        assert stabbing_number(bqueries, band_interval) <= 3

    def test_zipf_anchored_sizes_skewed(self):
        params = WorkloadParams(seed=10)
        anchors = spread_anchors(params, 10)
        sampler = ZipfSampler(10, beta=1.0)
        intervals = clustered_intervals(params, 2000, anchors, sampler=sampler)
        from repro.core.stabbing import canonical_stabbing_partition

        partition = canonical_stabbing_partition(intervals)
        sizes = sorted((g.size for g in partition.groups), reverse=True)
        assert sizes[0] > sizes[-1]

    def test_spread_anchors(self):
        params = WorkloadParams()
        anchors = spread_anchors(params, 4)
        assert len(anchors) == 4
        assert anchors == sorted(anchors)
        assert anchors[0] > params.domain_lo and anchors[-1] < params.domain_hi
        with pytest.raises(ValueError):
            spread_anchors(params, 0)

    def test_r_insert_events(self):
        params = WorkloadParams(seed=11)
        events = r_insert_events(params, 50)
        assert len(events) == 50
        for a, b in events:
            assert params.domain_lo <= a <= params.domain_hi


class TestMixedStream:
    def test_balance_and_liveness(self):
        params = WorkloadParams(seed=12)
        initial = make_band_join_queries(params, 50)
        rng = random.Random(1)

        def make_query(r):
            return make_band_join_queries(params, 1, rng=r)[0]

        inserts = deletes = 0
        live = set(id(q) for q in initial)
        for kind, query in mixed_query_stream(initial, 400, make_query, rng):
            if kind == "insert":
                inserts += 1
                assert id(query) not in live
                live.add(id(query))
            else:
                deletes += 1
                assert id(query) in live
                live.remove(id(query))
        assert inserts + deletes == 400
        assert abs(inserts - deletes) < 150  # roughly balanced
