"""Tests for the lazy maintenance strategy (Lemma 3): validity, the
(1 + eps) size bound, both reconstruction triggers, listener plumbing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.stabbing import stabbing_number

from conftest import fresh_intervals, int_interval_strategy


class RecordingListener:
    def __init__(self):
        self.events = []

    def on_group_created(self, group):
        self.events.append(("created", group))

    def on_group_destroyed(self, group):
        self.events.append(("destroyed", group))

    def on_item_added(self, group, item):
        self.events.append(("added", group, item))

    def on_item_removed(self, group, item):
        self.events.append(("removed", group, item))

    def on_rebuilt(self, partition):
        self.events.append(("rebuilt",))


class TestBasics:
    def test_empty(self):
        partition = LazyStabbingPartition()
        assert len(partition) == 0
        assert partition.total_items() == 0

    def test_initial_items_get_canonical_partition(self):
        intervals = [Interval(0, 10), Interval(2, 8), Interval(20, 30)]
        partition = LazyStabbingPartition(intervals)
        assert len(partition) == 2
        assert partition.reconstruction_count == 0
        partition.validate()

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            LazyStabbingPartition(epsilon=0)

    def test_invalid_trigger(self):
        with pytest.raises(ValueError):
            LazyStabbingPartition(trigger="bogus")

    def test_duplicate_insert_rejected(self):
        interval = Interval(0, 1)
        partition = LazyStabbingPartition()
        partition.insert(interval)
        with pytest.raises(ValueError):
            partition.insert(interval)

    def test_group_of_and_contains(self):
        a, b = Interval(0, 10), Interval(2, 8)
        partition = LazyStabbingPartition()
        partition.insert(a)
        partition.insert(b)
        assert a in partition
        assert partition.group_of(a) is partition.group_of(b)  # reuse refinement
        partition.delete(a)
        assert a not in partition

    def test_reuse_refinement_off_makes_singletons(self):
        partition = LazyStabbingPartition(
            epsilon=100.0, reuse_overlapping_group=False
        )
        partition.insert(Interval(0, 10))
        partition.insert(Interval(2, 8))
        assert len(partition) == 2  # no reuse, no reconstruction yet (eps huge)

    def test_delete_empties_group(self):
        interval = Interval(0, 1)
        partition = LazyStabbingPartition()
        partition.insert(interval)
        partition.delete(interval)
        assert len(partition) == 0


class TestSizeBound:
    @given(
        st.lists(int_interval_strategy(), min_size=1, max_size=80),
        st.lists(st.integers(0, 10_000), max_size=60),
        st.sampled_from([0.5, 1.0, 3.0]),
        st.sampled_from(["simple", "relaxed"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_size_bound_under_random_updates(self, intervals, picks, epsilon, trigger):
        intervals = fresh_intervals(intervals)
        partition = LazyStabbingPartition(epsilon=epsilon, trigger=trigger)
        live = []
        rng_ops = iter(picks)
        for interval in intervals:
            partition.insert(interval)
            live.append(interval)
            pick = next(rng_ops, None)
            if pick is not None and live and pick % 3 == 0:
                victim = live.pop(pick % len(live))
                partition.delete(victim)
            partition.validate()
            tau = stabbing_number(live)
            assert len(partition) <= (1.0 + epsilon) * tau + 1e-9, (
                f"{len(partition)} groups vs tau={tau}, eps={epsilon}"
            )

    def test_items_preserved_across_reconstructions(self):
        rng = random.Random(1)
        partition = LazyStabbingPartition(epsilon=0.5)
        live = []
        for __ in range(300):
            lo = rng.uniform(0, 100)
            interval = Interval(lo, lo + rng.uniform(0, 5))
            partition.insert(interval)
            live.append(interval)
            if rng.random() < 0.4 and live:
                victim = live.pop(rng.randrange(len(live)))
                partition.delete(victim)
        assert partition.total_items() == len(live)
        got = sorted((g.size for g in partition.groups), reverse=True)
        assert sum(got) == len(live)


class TestTriggers:
    def test_relaxed_reconstructs_less_often_than_simple(self):
        rng = random.Random(2)
        intervals = [Interval(x, x + 3) for x in (rng.uniform(0, 50) for __ in range(200))]

        def run(trigger):
            partition = LazyStabbingPartition(epsilon=1.0, trigger=trigger)
            for interval in fresh_intervals(intervals):
                partition.insert(interval)
            return partition.reconstruction_count

        assert run("relaxed") <= run("simple")

    def test_simple_trigger_counts_updates(self):
        # tau0 = 1 group; budget = eps*tau0/(eps+2) < 1 -> reconstruct every update.
        partition = LazyStabbingPartition([Interval(0, 10)], epsilon=1.0, trigger="simple")
        partition.insert(Interval(1, 9))
        assert partition.reconstruction_count == 1

    def test_size_bound_accessor(self):
        partition = LazyStabbingPartition(
            [Interval(0, 1), Interval(5, 6)], epsilon=1.0
        )
        assert partition.size_bound() == pytest.approx(4.0)


class TestListeners:
    def test_events_fired_in_order(self):
        listener = RecordingListener()
        # Seed with an item so tau0 > 0 and the huge epsilon keeps the
        # relaxed trigger from reconstructing during the test.
        seed_item = Interval(500, 501)
        partition = LazyStabbingPartition([seed_item], epsilon=100.0)
        partition.add_listener(listener)
        a = Interval(0, 10)
        partition.insert(a)
        assert [e[0] for e in listener.events] == ["created", "added"]
        b = Interval(2, 8)
        partition.insert(b)
        assert listener.events[-1][0] == "added"
        partition.delete(a)
        assert listener.events[-1][0] == "removed"
        partition.delete(b)
        assert listener.events[-1][0] == "destroyed"

    def test_rebuild_notification(self):
        listener = RecordingListener()
        partition = LazyStabbingPartition(epsilon=0.5, trigger="simple")
        partition.add_listener(listener)
        for i in range(10):
            partition.insert(Interval(i * 100.0, i * 100.0 + 1))
        assert ("rebuilt",) in listener.events

    def test_remove_listener(self):
        listener = RecordingListener()
        partition = LazyStabbingPartition()
        partition.add_listener(listener)
        partition.remove_listener(listener)
        partition.insert(Interval(0, 1))
        assert listener.events == []
