"""Shared-memory transport: ring semantics, lifecycle, and crash paths.

The transport's contract (``docs/RUNTIME.md``) in test form:

* the SPSC ring blocks on backpressure — frames are never dropped — and
  raises :class:`RingTimeoutError` only when the caller bounded the wait;
* ``close``/``unlink`` are idempotent on rings and on the pipeline, and a
  closed process-shm pipeline leaves zero worker processes and zero
  shared-memory segments behind, even when a worker was killed mid-run;
* validation fails loudly: foreign segments, layout-version mismatches,
  forged all-zero headers (the transient-zero-page hazard the seeded CRC
  exists for), and worker-side decode errors all surface as typed
  ``TransportError`` subclasses rather than hangs or silent drops;
* the process-shm data plane is delta-for-delta equivalent to the inline
  backend on a mixed insert/delete/subscribe stream.
"""

import struct
import threading
import time

import pytest

from repro.core.intervals import Interval
from repro.engine.events import DataEvent, EventKind
from repro.engine.queries import BandJoinQuery
from repro.engine.table import RTuple
from repro.runtime.pipeline import EventPipeline
from repro.runtime.replay import StreamProfile, generate_mixed_stream, run_replay
from repro.runtime.transport import frames
from repro.runtime.transport.shm import (
    _DATA,
    _FRAME,
    _OFF_TAIL,
    _U64,
    FrameCorruptionError,
    RingTimeoutError,
    ShmRing,
    TransportError,
)


def _r_insert(rid, a=10.0, b=20.0):
    return DataEvent(EventKind.INSERT, "R", RTuple(rid, a, b))


class TestRingBasics:
    def test_roundtrip_and_fifo_order(self):
        with ShmRing.create(1 << 16) as ring:
            payloads = [bytes([i]) * (i + 1) for i in range(64)]
            for payload in payloads:
                ring.send(payload)
            assert [ring.recv(timeout=1.0) for _ in payloads] == payloads
            assert ring.occupancy() == 0

    def test_wraparound(self):
        # Capacity forces every frame to straddle the ring boundary sooner
        # or later; contents must survive the byte-wise wrap.
        with ShmRing.create(64) as ring:
            for i in range(200):
                payload = bytes([i % 256]) * 40
                ring.send(payload)
                assert ring.recv(timeout=1.0) == payload

    def test_oversize_frame_rejected(self):
        with ShmRing.create(128) as ring:
            with pytest.raises(TransportError, match="exceeds ring capacity"):
                ring.send(b"x" * 256)

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=256)
        try:
            with pytest.raises(TransportError, match="not a transport ring"):
                ShmRing.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_attach_rejects_layout_version_mismatch(self):
        ring = ShmRing.create(1 << 12)
        try:
            struct.pack_into("<I", ring._shm.buf, 4, 999)
            with pytest.raises(TransportError, match="layout version"):
                ShmRing.attach(ring.name)
        finally:
            ring.close()
            ring.unlink()


class TestRingBackpressure:
    def test_full_ring_send_times_out_instead_of_dropping(self):
        with ShmRing.create(64) as ring:
            ring.send(b"a" * 40)
            start = time.monotonic()
            with pytest.raises(RingTimeoutError):
                ring.send(b"b" * 40, timeout=0.05)
            assert time.monotonic() - start >= 0.05
            # The resident frame was not evicted or corrupted.
            assert ring.recv(timeout=1.0) == b"a" * 40

    def test_blocked_send_completes_once_consumer_drains(self):
        ring = ShmRing.create(64)
        received = []

        def drain_later():
            time.sleep(0.05)
            received.append(ring.recv(timeout=2.0))
            received.append(ring.recv(timeout=2.0))

        try:
            ring.send(b"a" * 40)
            consumer = threading.Thread(target=drain_later)
            consumer.start()
            # Blocks until drain_later frees space, then must succeed.
            ring.send(b"b" * 40, timeout=5.0)
            consumer.join()
            assert received == [b"a" * 40, b"b" * 40]
        finally:
            ring.close()
            ring.unlink()


class TestRingValidation:
    def test_forged_zero_header_never_validates(self):
        # The transient-zero-page hazard: tail says a frame exists but its
        # header reads as zeros.  With a plain CRC32 an all-zero header is
        # a valid empty frame (crc32(b"") == 0); the length-seeded CRC must
        # instead reject it until the grace window expires.
        ring = ShmRing.create(1 << 12)
        try:
            _U64.pack_into(ring._shm.buf, _OFF_TAIL, _FRAME.size)
            start = time.monotonic()
            with pytest.raises(FrameCorruptionError):
                ring.recv(timeout=1.0)
            # It retried through the grace window rather than trusting the
            # first bad read.
            assert time.monotonic() - start >= 0.04
        finally:
            ring.close()
            ring.unlink()

    def test_transient_corruption_heals_within_grace(self):
        # A frame whose bytes "appear" shortly after tail was published
        # (the observed zero-page healing pattern) must be delivered, not
        # declared corrupt.
        ring = ShmRing.create(1 << 12)
        payload = b"late frame"

        def heal():
            time.sleep(0.01)
            from repro.runtime.transport.shm import _frame_crc

            header = _FRAME.pack(len(payload), _frame_crc(payload))
            ring._shm.buf[_DATA : _DATA + len(header)] = header
            ring._shm.buf[
                _DATA + len(header) : _DATA + len(header) + len(payload)
            ] = payload

        try:
            _U64.pack_into(ring._shm.buf, _OFF_TAIL, _FRAME.size + len(payload))
            healer = threading.Thread(target=heal)
            healer.start()
            assert ring.recv(timeout=1.0) == payload
            healer.join()
        finally:
            ring.close()
            ring.unlink()


class TestRingLifecycle:
    def test_close_and_unlink_are_idempotent(self):
        ring = ShmRing.create(1 << 12)
        ring.close()
        ring.close()
        ring.unlink()
        ring.unlink()

    def test_operations_on_closed_ring_raise(self):
        ring = ShmRing.create(1 << 12)
        name = ring.name
        ring.close()
        with pytest.raises(TransportError, match="closed ring"):
            ring.send(b"x")
        with pytest.raises(TransportError, match="closed ring"):
            ring.recv(timeout=0.01)
        ring.unlink()
        with pytest.raises(FileNotFoundError):
            ShmRing.attach(name)


def _segment_names(pipe):
    backend = pipe._backend
    return [ring.name for ring in (*backend._requests, *backend._responses)]


def _workers(pipe):
    return list(pipe._backend._workers)


class TestPipelineLifecycle:
    def test_close_idempotent_no_leaked_workers_or_segments(self):
        pipe = EventPipeline(num_shards=2, batch_size=8, mode="process-shm")
        pipe.subscribe(BandJoinQuery(Interval(0.0, 100.0), qid=1))
        pipe.run([_r_insert(i, float(i), float(i) + 5.0) for i in range(32)])
        names = _segment_names(pipe)
        workers = _workers(pipe)
        pipe.close()
        pipe.close()  # idempotent
        for worker in workers:
            assert not worker.is_alive()
        for name in names:
            with pytest.raises(FileNotFoundError):
                ShmRing.attach(name)

    def test_worker_killed_mid_run_fails_fast_and_closes_clean(self):
        pipe = EventPipeline(num_shards=2, batch_size=8, mode="process-shm")
        names = _segment_names(pipe)
        try:
            pipe.subscribe(BandJoinQuery(Interval(0.0, 100.0), qid=1))
            pipe.run([_r_insert(i, float(i), float(i) + 5.0) for i in range(16)])
            victim = _workers(pipe)[0]
            victim.kill()
            victim.join(timeout=5.0)
            with pytest.raises(TransportError, match="worker exited"):
                pipe.run([_r_insert(100 + i, 1.0, 2.0) for i in range(16)])
        finally:
            pipe.close()
        for worker in _workers(pipe):
            assert not worker.is_alive()
        for name in names:
            with pytest.raises(FileNotFoundError):
                ShmRing.attach(name)

    def test_worker_survives_bad_request_frame(self):
        # A decode error inside the worker must come back as an ERROR
        # frame — the worker stays alive and the next request still works.
        pipe = EventPipeline(num_shards=1, batch_size=4, mode="process-shm")
        try:
            backend = pipe._backend
            garbage = frames._HDR.pack(frames.FRAME_BATCH, frames.FRAME_VERSION)
            backend._send(0, garbage + b"\xff\xff\xff\xff")
            with pytest.raises(TransportError, match="bad request frame"):
                backend._expect_ack(0)
            assert _workers(pipe)[0].is_alive()
            pipe.subscribe(BandJoinQuery(Interval(0.0, 100.0), qid=7))
            out = pipe.run([_r_insert(0, 10.0, 12.0)])
            assert len(out) == 1
        finally:
            pipe.close()


class TestCrossProcessTelemetry:
    def test_merged_trace_and_metrics_span_processes(self):
        import os

        from repro.obs.tracing import RingTracer
        from repro.runtime.metrics import MetricsRegistry

        registry = MetricsRegistry()
        tracer = RingTracer()
        pipe = EventPipeline(
            num_shards=2,
            batch_size=8,
            mode="process-shm",
            metrics=registry,
            tracer=tracer,
        )
        try:
            pipe.subscribe(BandJoinQuery(Interval(0.0, 100.0), qid=1))
            for i in range(200):
                pipe.submit(_r_insert(i, float(i % 50), 1.0))
            pipe.drain()
            pipe.sample_hotspots()  # drains pending worker telemetry
        finally:
            pipe.close()

        # One trace across processes: parent and both workers share the
        # parent's trace id, and spans carry at least two distinct pids.
        spans = tracer.snapshot()
        pids = {s.pid for s in spans}
        assert os.getpid() in pids
        assert len(pids) >= 2, f"expected worker spans, saw pids {pids}"
        worker_spans = [s for s in spans if s.pid != os.getpid()]
        batch_spans = [s for s in worker_spans if s.name == "worker.batch"]
        assert batch_spans, "no worker.batch spans merged"
        # Spans recorded after the first BATCH share the parent's trace id
        # (pre-adoption spans, e.g. from subscribe, keep the worker's own).
        assert all(s.trace_id == tracer.trace_id for s in batch_spans)
        # Non-empty batches parent to the pipeline's roundtrip span (the
        # empty telemetry-drain batches legitimately have no open parent).
        real_batches = [s for s in batch_spans if (s.args or {}).get("events")]
        assert real_batches
        assert all(s.parent_id != 0 for s in real_batches)

        # The Chrome export names a lane per process.
        trace = tracer.to_chrome_trace()
        meta = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert meta.get(os.getpid()) == "pipeline (parent)"
        assert sum("worker" in name for name in meta.values()) >= 2

        # Worker metrics merged under shard prefixes; e2e histograms filled
        # on both sides of the boundary.
        snapshot = registry.snapshot()
        assert snapshot["histograms"]["pipeline/e2e_us"]["count"] == 200
        for shard in (0, 1):
            merged = snapshot["histograms"].get(
                f"shard{shard}/worker/e2e/ingest_to_apply_us"
            )
            assert merged is not None and merged["count"] > 0
            assert snapshot["histograms"][f"shard/{shard}/e2e_us"]["count"] > 0

    def test_inline_mode_unchanged_by_telemetry_wiring(self):
        from repro.runtime.metrics import MetricsRegistry

        registry = MetricsRegistry()
        pipe = EventPipeline(num_shards=2, batch_size=8, metrics=registry)
        try:
            pipe.subscribe(BandJoinQuery(Interval(0.0, 100.0), qid=1))
            for i in range(50):
                pipe.submit(_r_insert(i, float(i % 10), 1.0))
            pipe.drain()
        finally:
            pipe.close()
        snapshot = registry.snapshot()
        assert snapshot["histograms"]["pipeline/e2e_us"]["count"] == 50
        # No worker registries inline — nothing merged under shardN/.
        assert not any(
            name.startswith("shard0/worker/") for name in snapshot["histograms"]
        )


class TestReplayEquivalence:
    def test_process_shm_matches_reference_on_mixed_stream(self):
        stream = generate_mixed_stream(
            StreamProfile(
                n_events=1_500,
                n_initial_queries=40,
                query_event_fraction=0.03,
                delete_fraction=0.25,
                churn=0.0,
                seed=11,
            )
        )
        report = run_replay(stream, num_shards=2, batch_size=32, mode="process-shm")
        assert report.equivalent, report.summary()
